package generic_test

// Model-quality observability at the pipeline layer: drift-reference
// capture at Fit/Binarize, the PredictMargin surface, shadow-mode
// disagreement sampling, and Clone sharing the (immutable) quality state.

import (
	"testing"

	generic "github.com/edge-hdc/generic"
	"github.com/edge-hdc/generic/internal/quality"
)

func TestFitCapturesQualityProfile(t *testing.T) {
	p, _ := trainedEEG(t)
	prof := p.QualityProfile()
	if prof == nil {
		t.Fatal("no quality profile after Fit")
	}
	if prof.Mode != "exact" {
		t.Fatalf("profile mode = %q, want exact", prof.Mode)
	}
	if prof.Samples == 0 || prof.Samples > 256 {
		t.Fatalf("profile samples = %d, want bounded (0,256]", prof.Samples)
	}
	var massM, massP float64
	for _, v := range prof.Margin {
		massM += v
	}
	for _, v := range prof.Priors {
		massP += v
	}
	if massM < 0.999 || massM > 1.001 || massP < 0.999 || massP > 1.001 {
		t.Fatalf("profile mass margin=%v priors=%v, want 1", massM, massP)
	}

	// Binarize rebases the reference onto the packed representation.
	if err := p.Binarize(); err != nil {
		t.Fatal(err)
	}
	bprof := p.QualityProfile()
	if bprof == nil || bprof.Mode != "binary" {
		t.Fatalf("post-Binarize profile = %+v, want binary mode", bprof)
	}
	if bprof == prof {
		t.Fatal("Binarize did not rebuild the profile")
	}
}

func TestPredictMarginMatchesPredict(t *testing.T) {
	p, ds := trainedEEG(t)
	for _, x := range ds.TestX[:32] {
		want, err := p.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		got, margin, err := p.PredictMargin(x)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("PredictMargin class %d != Predict class %d", got, want)
		}
		if margin < 0 || margin > 1 {
			t.Fatalf("margin %v out of [0,1]", margin)
		}
	}
}

func TestShadowSamplingTracksDisagreement(t *testing.T) {
	p, ds := trainedEEG(t)
	if err := p.Binarize(); err != nil {
		t.Fatal(err)
	}
	p.SetShadowSampling(1) // every binary predict is shadow-compared
	if p.ShadowEvery() != 1 {
		t.Fatalf("ShadowEvery = %d, want 1", p.ShadowEvery())
	}

	before := quality.Default.Total()
	const n = 64
	for _, x := range ds.TestX[:n] {
		if _, err := p.Predict(x); err != nil {
			t.Fatal(err)
		}
	}
	after := quality.Default.Total()
	if got := after.ShadowSamples - before.ShadowSamples; got != n {
		t.Fatalf("shadow samples delta = %d, want %d", got, n)
	}
	// Disagreement is bounded by the sample count; the rate on a trained
	// model should be far from certain disagreement.
	dis := after.ShadowDisagree - before.ShadowDisagree
	if dis < 0 || dis > n {
		t.Fatalf("shadow disagreements = %d out of range [0,%d]", dis, n)
	}

	// Exact-mode predicts never shadow-sample.
	p.SetShadowSampling(0)
	before = quality.Default.Total()
	if _, err := p.Predict(ds.TestX[0]); err != nil {
		t.Fatal(err)
	}
	after = quality.Default.Total()
	if after.ShadowSamples != before.ShadowSamples {
		t.Fatal("shadow sampled while disabled")
	}
}

func TestShadowSamplingBatch(t *testing.T) {
	p, ds := trainedEEG(t)
	if err := p.Binarize(); err != nil {
		t.Fatal(err)
	}
	p.SetShadowSampling(4)
	before := quality.Default.Total()
	const n = 64
	if _, err := p.PredictAll(ds.TestX[:n]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PredictAll(ds.TestX[:n], generic.WithWorkers(4)); err != nil {
		t.Fatal(err)
	}
	after := quality.Default.Total()
	if got, want := after.ShadowSamples-before.ShadowSamples, int64(2*n/4); got != want {
		t.Fatalf("batch shadow samples delta = %d, want %d (1 in 4)", got, want)
	}
}

func TestCloneSharesQualityState(t *testing.T) {
	p, _ := trainedEEG(t)
	p.SetShadowSampling(8)
	c := p.Clone()
	if c.QualityProfile() != p.QualityProfile() {
		t.Fatal("clone rebuilt the profile instead of sharing it")
	}
	if c.ShadowEvery() != 8 {
		t.Fatalf("clone shadowEvery = %d, want 8", c.ShadowEvery())
	}
}
