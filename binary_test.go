package generic_test

// Binary inference engine: the golden equivalence contract (binary == exact
// on a sign-binarized model, bit-identically), the mode API's error surface,
// and the deprecated wrappers' equivalence to their option-based forms.

import (
	"bytes"
	"errors"
	"testing"

	generic "github.com/edge-hdc/generic"
	"github.com/edge-hdc/generic/internal/hdc"
)

// trainedEEG builds a small trained pipeline shared by the mode-API tests.
func trainedEEG(t testing.TB) (*generic.Pipeline, *generic.Dataset) {
	t.Helper()
	ds, err := generic.LoadDataset("EEG", 1)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := generic.EncoderForDataset(generic.Generic, ds, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := generic.NewPipeline(enc, ds.Classes)
	if _, err := p.Fit(ds.TrainX[:400], ds.TrainY[:400], generic.TrainOptions{Epochs: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return p, ds
}

// TestBinaryGoldenEquivalence is the acceptance contract: on every
// benchmark, the packed engine predicts bit-identically to the integer
// engine run on the same sign-binarized data — model counters collapsed by
// Quantize(1), query collapsed to its signs. On bipolar vectors the
// modified-cosine ranking degenerates to the dot ranking, which is exactly
// min-Hamming (dot = D − 2·hamming) with the same lowest-index tie-break,
// so there is no tolerance here. (Binary mode is NOT expected to match the
// exact path on the un-binarized query — collapsing the query's magnitudes
// is precisely what the representation trades away.)
func TestBinaryGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("trains on all 11 benchmarks")
	}
	for _, name := range generic.Datasets() {
		name := name
		t.Run(name, func(t *testing.T) {
			ds, err := generic.LoadDataset(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			enc, err := generic.EncoderForDataset(generic.Generic, ds, 512, 1)
			if err != nil {
				t.Fatal(err)
			}
			p := generic.NewPipeline(enc, ds.Classes)
			if _, err := p.Fit(ds.TrainX, ds.TrainY, generic.TrainOptions{Epochs: 2, Seed: 1}); err != nil {
				t.Fatal(err)
			}

			// The reference: the integer scoring path on sign-binarized
			// counters and a sign-binarized query. Same config + seed gives a
			// reference encoder with bit-identical material.
			refModel := p.Model().Clone()
			refModel.Quantize(1)
			refEnc, err := generic.EncoderForDataset(generic.Generic, ds, 512, 1)
			if err != nil {
				t.Fatal(err)
			}

			if err := p.Binarize(); err != nil {
				t.Fatal(err)
			}
			n := len(ds.TestX)
			if n > 200 {
				n = 200
			}
			h := hdc.NewVec(refEnc.D())
			bq := hdc.NewBinVec(refEnc.D())
			q := hdc.NewVec(refEnc.D())
			for i := 0; i < n; i++ {
				refEnc.Encode(ds.TestX[i], h)
				bq.PackSigns(h)
				bq.Unpack(q)
				want, _ := refModel.Predict(q)
				got := must(p.Predict(ds.TestX[i]))
				if got != want {
					t.Fatalf("sample %d: binary %d, sign-binarized integer reference %d", i, got, want)
				}
			}
		})
	}
}

func TestModeAPIErrors(t *testing.T) {
	p, ds := trainedEEG(t)
	x := ds.TestX[0]

	// Binary before the mode transition is a caller error, not a panic.
	if _, err := p.Predict(x, generic.WithMode(generic.Binary)); !errors.Is(err, generic.ErrNotBinarized) {
		t.Fatalf("Predict binary before Binarize: err = %v, want ErrNotBinarized", err)
	}
	if _, err := p.Accuracy(ds.TestX[:4], ds.TestY[:4], generic.WithMode(generic.Binary)); !errors.Is(err, generic.ErrNotBinarized) {
		t.Fatalf("Accuracy binary before Binarize: err = %v, want ErrNotBinarized", err)
	}
	if err := p.PredictAllInto(make([]int, 4), ds.TestX[:4], generic.WithMode(generic.Binary)); !errors.Is(err, generic.ErrNotBinarized) {
		t.Fatalf("PredictAllInto binary before Binarize: err = %v, want ErrNotBinarized", err)
	}
	if _, err := p.Predict(x, generic.WithMode(generic.Mode(99))); err == nil {
		t.Fatal("unknown inference mode accepted")
	}

	// Before the transition the pipeline reports and defaults to Exact.
	if p.Binarized() || p.Mode() != generic.Exact {
		t.Fatalf("untransitioned pipeline: Binarized=%v Mode=%v", p.Binarized(), p.Mode())
	}
	if err := p.Binarize(); err != nil {
		t.Fatal(err)
	}
	if !p.Binarized() || p.Mode() != generic.Binary {
		t.Fatalf("after Binarize: Binarized=%v Mode=%v", p.Binarized(), p.Mode())
	}
	// Exact stays reachable per call; the default now takes the binary path.
	d := must(p.Predict(x))
	b := must(p.Predict(x, generic.WithMode(generic.Binary)))
	if d != b {
		t.Fatalf("default mode after Binarize predicted %d, explicit Binary %d", d, b)
	}
	if _, err := p.Predict(x, generic.WithMode(generic.Exact)); err != nil {
		t.Fatalf("exact-mode override on a binarized pipeline: %v", err)
	}
}

// TestBinaryBatchDeterminism: the binary batch path is bit-identical across
// worker counts and across repeated runs (this is the -race suite's meat:
// pooled per-goroutine states must not share scratch).
func TestBinaryBatchDeterminism(t *testing.T) {
	p, ds := trainedEEG(t)
	if err := p.Binarize(); err != nil {
		t.Fatal(err)
	}
	X := ds.TestX[:256]
	ref := must(p.PredictAll(X, generic.WithWorkers(1)))
	for _, workers := range []int{1, 2, 4, 0} {
		for rep := 0; rep < 3; rep++ {
			got := must(p.PredictAll(X, generic.WithWorkers(workers)))
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d rep %d: sample %d predicted %d, serial reference %d",
						workers, rep, i, got[i], ref[i])
				}
			}
		}
	}
	// Accuracy agrees with counting the batch predictions.
	correct := 0
	for i := range ref {
		if ref[i] == ds.TestY[i] {
			correct++
		}
	}
	want := float64(correct) / float64(len(ref))
	if acc := must(p.Accuracy(X, ds.TestY[:256], generic.WithWorkers(3))); acc != want {
		t.Fatalf("binary Accuracy %v, batch count %v", acc, want)
	}
}

// TestDeprecatedWrappersEquivalent pins the compatibility contract: each
// deprecated entry point is a pure delegation to its option-based form.
func TestDeprecatedWrappersEquivalent(t *testing.T) {
	p, ds := trainedEEG(t)
	X, Y := ds.TestX[:64], ds.TestY[:64]

	//lint:ignore generic/depapi the deprecated wrappers are themselves under test here
	oldBatch := must(p.PredictBatch(X, 2))
	newBatch := must(p.PredictAll(X, generic.WithWorkers(2)))
	for i := range oldBatch {
		if oldBatch[i] != newBatch[i] {
			t.Fatalf("PredictBatch differs from PredictAll at %d", i)
		}
	}

	//lint:ignore generic/depapi deprecated wrapper under test
	oldAcc := must(p.AccuracyWorkers(X, Y, 2))
	if newAcc := must(p.Accuracy(X, Y, generic.WithWorkers(2))); oldAcc != newAcc {
		t.Fatalf("AccuracyWorkers %v != Accuracy+WithWorkers %v", oldAcc, newAcc)
	}

	if err := p.Binarize(); err != nil {
		t.Fatal(err)
	}
	// PredictReduced pins the historical exact representation even on a
	// binarized pipeline.
	for _, dims := range []int{1024, 512, 100, 1} {
		//lint:ignore generic/depapi deprecated wrapper under test
		old := must(p.PredictReduced(X[0], dims))
		new_ := must(p.Predict(X[0], generic.WithDims(dims), generic.WithMode(generic.Exact)))
		if old != new_ {
			t.Fatalf("dims=%d: PredictReduced %d != Predict+WithDims+Exact %d", dims, old, new_)
		}
	}
}

// TestBinaryWithDimsMatchesExactRounding: reduced-dimension binary
// prediction applies the same sub-norm chunk rounding as the exact path —
// checked against the integer engine's PredictDims on sign-binarized data,
// at aligned, unaligned, sub-chunk, and over-D widths.
func TestBinaryWithDimsMatchesExactRounding(t *testing.T) {
	p, ds := trainedEEG(t)
	refModel := p.Model().Clone()
	refModel.Quantize(1)
	refEnc, err := generic.EncoderForDataset(generic.Generic, ds, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Binarize(); err != nil {
		t.Fatal(err)
	}
	h := hdc.NewVec(refEnc.D())
	bq := hdc.NewBinVec(refEnc.D())
	q := hdc.NewVec(refEnc.D())
	for _, dims := range []int{1, 63, 64, 100, 512, 1000, 1024, 5000} {
		for i := 0; i < 32; i++ {
			refEnc.Encode(ds.TestX[i], h)
			bq.PackSigns(h)
			bq.Unpack(q)
			wantDims := dims
			if wantDims > refEnc.D() {
				wantDims = refEnc.D()
			}
			want, _ := refModel.PredictDims(q, wantDims, true)
			got := must(p.Predict(ds.TestX[i], generic.WithDims(dims)))
			if got != want {
				t.Fatalf("dims=%d sample %d: binary %d, sign-binarized integer reference %d", dims, i, got, want)
			}
		}
	}
}

// TestBinarizedSaveLoad: the v4 model file round-trips the representation —
// a binarized pipeline loads back binarized, in Binary mode, predicting
// identically; a plain save stays exact.
func TestBinarizedSaveLoad(t *testing.T) {
	p, ds := trainedEEG(t)
	if err := p.Binarize(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := generic.LoadPipeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Binarized() || got.Mode() != generic.Binary {
		t.Fatalf("loaded pipeline: Binarized=%v Mode=%v, want true/Binary", got.Binarized(), got.Mode())
	}
	for i := 0; i < 64; i++ {
		want := must(p.Predict(ds.TestX[i]))
		have := must(got.Predict(ds.TestX[i]))
		if have != want {
			t.Fatalf("sample %d: loaded binarized pipeline predicted %d, original %d", i, have, want)
		}
	}

	// A never-binarized pipeline round-trips as exact.
	plain, _ := trainedEEG(t)
	buf.Reset()
	if err := plain.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if got, err = generic.LoadPipeline(&buf); err != nil || got.Binarized() || got.Mode() != generic.Exact {
		t.Fatalf("plain round trip: Binarized=%v Mode=%v err=%v", got.Binarized(), got.Mode(), err)
	}
}
