// Command generic-sim drives the cycle-level model of the GENERIC ASIC on
// a benchmark workload and reports latency, energy, average power, and the
// component breakdown — the numbers §5.1/§5.2 of the paper report for the
// synthesized design.
//
// Usage:
//
//	generic-sim -dataset EEG                  # train + infer, report energy
//	generic-sim -dataset ISOLET -bw 4 -ber 0.01
//	generic-sim -dataset Hepta -mode cluster
//	generic-sim -dataset ISOLET -fault-site class -fault-rate 0.01 -scrub
//	generic-sim -dataset ISOLET -fault-site class -fault-model bank -fault-lane 3 -scrub
package main

import (
	"flag"
	"fmt"
	"os"

	generic "github.com/edge-hdc/generic"
)

func main() {
	var (
		name   = flag.String("dataset", "EEG", "classification benchmark, or a clustering one with -mode cluster")
		d      = flag.Int("d", 4096, "hypervector dimensionality")
		epochs = flag.Int("epochs", 5, "training/clustering epochs to simulate")
		seed   = flag.Uint64("seed", 1, "random seed")
		bw     = flag.Int("bw", 16, "class bit-width (spec port)")
		ber    = flag.Float64("ber", 0, "voltage over-scaling: target class-memory bit-error rate")
		mode   = flag.String("mode", "train", "train | infer | cluster")
		limit  = flag.Int("limit", 200, "max training inputs to simulate")
		vcd    = flag.String("trace", "", "write an activity VCD waveform to this file and print the utilization timeline")

		fSite  = flag.String("fault-site", "", "inject faults into this memory before inference: class | level | id | norm | input | datapath")
		fModel = flag.String("fault-model", "uniform", "fault model: uniform | stuck0 | stuck1 | burst | bank")
		fRate  = flag.Float64("fault-rate", 0.01, "per-bit corruption probability (per-row for burst)")
		fBurst = flag.Int("fault-burst", 0, "burst length in bits (burst model; 0 means 8)")
		fLane  = flag.Int("fault-lane", 0, "dead bank index in [0,16) (bank model)")
		fSeed  = flag.Uint64("fault-seed", 0xfa, "fault-process seed (same seed, same spec: bit-identical corruption)")
		scrub  = flag.Bool("scrub", false, "run the detection-and-repair pass after fault injection")
	)
	flag.Parse()
	traceFile = *vcd
	faultSpec = parseFaultFlags(*fSite, *fModel, *fRate, *fBurst, *fLane, *fSeed)
	scrubAfter = *scrub

	switch *mode {
	case "train", "infer":
		runClassification(*name, *d, *epochs, *seed, *bw, *ber, *mode, *limit)
	case "cluster":
		runClustering(*name, *d, *epochs, *seed, *bw, *ber)
	default:
		fmt.Fprintf(os.Stderr, "generic-sim: unknown mode %q\n", *mode)
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "generic-sim:", err)
	os.Exit(1)
}

// traceFile holds the -trace flag; attachTrace installs a timeline on the
// accelerator when set, and dumpTrace writes the VCD and prints the
// utilization summary.
var traceFile string

// faultSpec holds the parsed -fault-* flags (nil when -fault-site is unset);
// scrubAfter mirrors -scrub.
var (
	faultSpec  *generic.FaultSpec
	scrubAfter bool
)

func parseFaultFlags(site, model string, rate float64, burst, lane int, seed uint64) *generic.FaultSpec {
	if site == "" {
		return nil
	}
	s, err := generic.ParseFaultSite(site)
	if err != nil {
		fail(err)
	}
	k, err := generic.ParseFaultModel(model)
	if err != nil {
		fail(err)
	}
	spec := generic.FaultSpec{Site: s, Kind: k, Rate: rate, Burst: burst, Lane: lane, Seed: seed}
	if err := spec.Validate(); err != nil {
		fail(err)
	}
	return &spec
}

// applyFaults injects the -fault-* spec into the trained accelerator —
// persistent sites corrupt stored state now, transient sites arm an ongoing
// process for the inference pass — then optionally scrubs and reports the
// fault-layer health.
func applyFaults(acc *generic.Accelerator) {
	if faultSpec == nil {
		return
	}
	n, err := acc.InjectFaults(*faultSpec)
	if err != nil {
		fail(err)
	}
	fmt.Printf("fault: injected %s (%d bits changed)\n", faultSpec, n)
	if scrubAfter {
		fmt.Printf("fault: %s\n", acc.Scrub())
	}
	fmt.Printf("fault: health %s\n", acc.Health())
}

func attachTrace(acc *generic.Accelerator) *generic.ActivityTimeline {
	if traceFile == "" {
		return nil
	}
	tl := &generic.ActivityTimeline{Cap: 200000}
	acc.SetTracer(tl)
	return tl
}

func dumpTrace(tl *generic.ActivityTimeline) {
	if tl == nil {
		return
	}
	fmt.Print(tl.String())
	fmt.Print(tl.RenderASCII(72))
	f, err := os.Create(traceFile)
	if err != nil {
		fail(err)
	}
	if err := tl.WriteVCD(f); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote VCD waveform to %s\n", traceFile)
}

func runClassification(name string, d, epochs int, seed uint64, bw int, ber float64, mode string, limit int) {
	ds, err := generic.LoadDataset(name, seed)
	if err != nil {
		fail(err)
	}
	n := 3
	if ds.Features < n {
		n = ds.Features
	}
	spec := generic.Spec{
		D: d, Features: ds.Features, N: n, Classes: ds.Classes,
		BW: bw, UseID: ds.UseID, Mode: generic.ModeTrain,
	}
	acc, err := generic.NewAccelerator(spec, seed, ds.Lo, ds.Hi)
	if err != nil {
		fail(err)
	}
	tl := attachTrace(acc)
	nTrain := ds.TrainLen()
	if nTrain > limit {
		nTrain = limit
	}
	acc.Train(ds.TrainX[:nTrain], ds.TrainY[:nTrain], epochs)
	trainStats := acc.Stats()
	acc.ResetStats()
	if tl != nil {
		// The cycle counter restarts with the stats; restart the timeline
		// too so the dump covers the inference phase coherently.
		tl.Reset()
	}

	// Faults are injected into the trained state, so the inference pass (and
	// its energy report) sees the corrupted — or scrubbed — accelerator.
	applyFaults(acc)

	preds := acc.InferAll(ds.TestX)
	correct := 0
	for i, p := range preds {
		if p == ds.TestY[i] {
			correct++
		}
	}
	inferStats := acc.Stats()

	pcfg := generic.PowerConfig{
		ActiveBankFrac: spec.ActiveBankFrac(), BW: bw,
		MaskedLanes: acc.MaskedLanes(),
	}
	if ber > 0 {
		pcfg.VOS = generic.VOSForBER(ber)
	}
	fmt.Printf("spec: D=%d d=%d n=%d nC=%d bw=%d ids=%v | class-mem fill %.0f%%, %d/4 banks powered\n",
		spec.D, spec.Features, spec.N, spec.Classes, bw, spec.UseID,
		100*spec.Fill(), int(spec.ActiveBankFrac()*4))
	report := func(label string, st generic.Stats, inputs int) {
		rep := generic.Energy(st, pcfg)
		fmt.Printf("%s: %d inputs, %d cycles, %.2f ms, %s (%.3f mW avg; %s/input, %.1f µs/input)\n",
			label, inputs, st.Cycles, rep.Seconds*1e3, fmtJ(rep.TotalJ),
			rep.AvgPowerW*1e3, fmtJ(rep.TotalJ/float64(inputs)),
			rep.Seconds/float64(inputs)*1e6)
	}
	report("train", trainStats, nTrain*(epochs+1))
	report("infer", inferStats, ds.TestLen())
	fmt.Printf("test accuracy: %.2f%% (%d/%d)\n",
		100*float64(correct)/float64(ds.TestLen()), correct, ds.TestLen())
	dumpTrace(tl)
	_ = mode
}

func runClustering(name string, d, epochs int, seed uint64, bw int, ber float64) {
	cs, err := generic.LoadClusterSet(name, seed)
	if err != nil {
		fail(err)
	}
	n := 3
	if cs.Features < n {
		n = cs.Features
	}
	spec := generic.Spec{
		D: d, Features: cs.Features, N: n, Classes: cs.K,
		BW: bw, UseID: true, Mode: generic.ModeCluster,
	}
	acc, err := generic.NewAccelerator(spec, seed, cs.Lo, cs.Hi)
	if err != nil {
		fail(err)
	}
	tl := attachTrace(acc)
	assign := acc.ClusterFit(cs.X, epochs)
	pcfg := generic.PowerConfig{ActiveBankFrac: spec.ActiveBankFrac(), BW: bw}
	if ber > 0 {
		pcfg.VOS = generic.VOSForBER(ber)
	}
	rep := generic.Energy(acc.Stats(), pcfg)
	presentations := len(cs.X) * (epochs + 1)
	fmt.Printf("clustered %s: %d points into k=%d over %d epochs\n", cs.Name, len(cs.X), cs.K, epochs)
	fmt.Printf("NMI vs ground truth: %.3f\n", generic.NMI(assign, cs.Labels))
	fmt.Printf("energy: %s total, %s/input; latency %.1f µs/input; avg power %.3f mW\n",
		fmtJ(rep.TotalJ), fmtJ(rep.TotalJ/float64(presentations)),
		rep.Seconds/float64(presentations)*1e6, rep.AvgPowerW*1e3)
	dumpTrace(tl)
}

func fmtJ(x float64) string {
	switch {
	case x >= 1e-3:
		return fmt.Sprintf("%.3g mJ", x*1e3)
	case x >= 1e-6:
		return fmt.Sprintf("%.3g µJ", x*1e6)
	case x >= 1e-9:
		return fmt.Sprintf("%.3g nJ", x*1e9)
	default:
		return fmt.Sprintf("%.3g pJ", x*1e12)
	}
}
