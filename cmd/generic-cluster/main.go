// Command generic-cluster runs HDC clustering and the k-means baseline on
// one of the paper's clustering benchmarks and reports both normalized
// mutual information scores (Table 2).
//
// Usage:
//
//	generic-cluster -dataset Hepta
//	generic-cluster -dataset TwoDiamonds -d 2048 -epochs 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	generic "github.com/edge-hdc/generic"
	"github.com/edge-hdc/generic/internal/perf"
)

func main() {
	var (
		name    = flag.String("dataset", "Hepta", "benchmark ("+strings.Join(generic.ClusterSets(), ",")+")")
		d       = flag.Int("d", 4096, "hypervector dimensionality")
		epochs  = flag.Int("epochs", 10, "clustering epochs")
		seed    = flag.Uint64("seed", 1, "random seed")
		k       = flag.Int("k", 0, "cluster count (0 = ground truth)")
		workers = flag.Int("workers", 0, "worker count for encoding and assignment scans (0 = all cores, 1 = serial; results are identical)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile at exit to this file")
		traceF  = flag.String("trace", "", "enable span tracing and write Chrome trace-event JSON to this file")
	)
	flag.Parse()
	profiles, err := perf.StartProfiles(*cpuProf, *memProf, *traceF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "generic-cluster:", err)
		os.Exit(1)
	}
	defer func() {
		if err := profiles.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "generic-cluster:", err)
		}
	}()

	cs, err := generic.LoadClusterSet(*name, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "generic-cluster:", err)
		os.Exit(1)
	}
	kk := cs.K
	if *k > 0 {
		kk = *k
	}
	n := 3
	if cs.Features < n {
		n = cs.Features
	}
	enc, err := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D: *d, Features: cs.Features, Bins: 32, Lo: cs.Lo, Hi: cs.Hi,
		N: n, UseID: true, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "generic-cluster:", err)
		os.Exit(1)
	}

	fmt.Printf("dataset %s: %d points, %d features, k=%d\n", cs.Name, len(cs.X), cs.Features, kk)
	hdcRes := generic.ClusterWorkers(enc, cs.X, kk, *epochs, *workers)
	kmRes := generic.KMeans(cs.X, kk, 100, 10, *seed)
	fmt.Printf("HDC clustering NMI:     %.3f (%d epochs)\n",
		generic.NMI(hdcRes.Assignments, cs.Labels), *epochs)
	fmt.Printf("k-means baseline NMI:   %.3f (%d Lloyd iterations, best of 10)\n",
		generic.NMI(kmRes.Assignments, cs.Labels), kmRes.Iters)
}
