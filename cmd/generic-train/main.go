// Command generic-train trains and evaluates an HDC classifier on one of
// the paper's benchmarks, reporting test accuracy and, optionally, the
// accuracy under bit-width quantization and dimension reduction.
//
// Usage:
//
//	generic-train -dataset EEG
//	generic-train -dataset ISOLET -encoding ngram -d 2048 -epochs 10
//	generic-train -dataset FACE -bw 4 -dims 1024
//	generic-train -dataset EEG -binarize -save eeg.ghdc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	generic "github.com/edge-hdc/generic"
	"github.com/edge-hdc/generic/internal/perf"
	"github.com/edge-hdc/generic/internal/rng"
)

var kinds = map[string]generic.EncodingKind{
	"rp": generic.RP, "level-id": generic.LevelID, "ngram": generic.Ngram,
	"permute": generic.Permute, "generic": generic.Generic,
}

// must unwraps (value, error) results from the trained-pipeline API.
func must[T any](v T, err error) T {
	if err != nil {
		fmt.Fprintln(os.Stderr, "generic-train:", err)
		os.Exit(1)
	}
	return v
}

func main() {
	var (
		name    = flag.String("dataset", "EEG", "benchmark ("+strings.Join(generic.Datasets(), ",")+")")
		kind    = flag.String("encoding", "generic", "encoding (rp,level-id,ngram,permute,generic)")
		d       = flag.Int("d", 4096, "hypervector dimensionality")
		epochs  = flag.Int("epochs", 20, "retraining epochs")
		trainer = flag.String("trainer", "", "training strategy ("+strings.Join(generic.Trainers(), ",")+"; empty = perceptron)")
		lr      = flag.Float64("lr", 0, "lehdc: initial learning rate (0 = default 0.5)")
		lrDecay = flag.Float64("lr-decay", 0, "lehdc: per-epoch learning-rate decay (0 = default 0.95)")
		batch   = flag.Int("batch", 0, "lehdc: mini-batch size (0 = default 16)")
		seed    = flag.Uint64("seed", 0, "random seed (0 = derive one from the clock; the choice is printed so any run can be replayed)")
		bw      = flag.Int("bw", 0, "quantize the trained model to this bit-width (0 = keep 16)")
		dims    = flag.Int("dims", 0, "also evaluate with dimension reduction to this many dims")
		binar   = flag.Bool("binarize", false, "binarize the trained model for packed Hamming inference (-save then emits a binarized model file)")
		save    = flag.String("save", "", "write the trained pipeline to this file")
		load    = flag.String("load", "", "skip training; load a pipeline from this file and evaluate")
		csvIn   = flag.String("csv", "", "train on a labelled CSV file instead of a named benchmark")
		workers = flag.Int("workers", 0, "worker count for batch encode/train/evaluate (0 = all cores, 1 = serial; results are identical)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile at exit to this file")
		traceF  = flag.String("trace", "", "enable span tracing and write Chrome trace-event JSON to this file")
	)
	flag.Parse()
	profiles := must(perf.StartProfiles(*cpuProf, *memProf, *traceF))
	defer func() {
		if err := profiles.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "generic-train:", err)
		}
	}()
	*seed = chooseSeed(*seed)
	fmt.Printf("seed: %d (rerun with -seed %d to reproduce)\n", *seed, *seed)

	if *load != "" {
		ds, err := generic.LoadDataset(*name, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "generic-train:", err)
			os.Exit(1)
		}
		p, err := generic.LoadPipelineFile(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "generic-train:", err)
			os.Exit(1)
		}
		trainedBy := p.Trainer()
		if trainedBy == "" {
			trainedBy = "unknown"
		}
		fmt.Printf("loaded pipeline from %s (D=%d, %d classes, %d-bit, trainer %s, %s mode)\n",
			*load, p.Model().D(), p.Model().Classes(), p.Model().BW(), trainedBy, p.Mode())
		fmt.Printf("test accuracy: %.2f%%\n", 100*must(p.Accuracy(ds.TestX, ds.TestY, generic.WithWorkers(*workers))))
		return
	}

	k, ok := kinds[strings.ToLower(*kind)]
	if !ok {
		fmt.Fprintf(os.Stderr, "generic-train: unknown encoding %q\n", *kind)
		os.Exit(1)
	}
	var ds *generic.Dataset
	var err error
	if *csvIn != "" {
		ds, err = generic.LoadCSV(*csvIn, generic.CSVOptions{Seed: *seed})
	} else {
		ds, err = generic.LoadDataset(*name, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "generic-train:", err)
		os.Exit(1)
	}
	enc, err := generic.EncoderForDataset(k, ds, *d, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "generic-train:", err)
		os.Exit(1)
	}

	fmt.Printf("dataset %s: %d train / %d test, %d features, %d classes (%s)\n",
		ds.Name, ds.TrainLen(), ds.TestLen(), ds.Features, ds.Classes, ds.Kind)
	p := generic.NewPipeline(enc, ds.Classes, generic.WithTrainer(*trainer))
	start := time.Now()
	res, err := p.FitResult(ds.TrainX, ds.TrainY, generic.TrainOptions{
		Epochs: *epochs, Seed: *seed, Workers: *workers,
		LR: *lr, LRDecay: *lrDecay, BatchSize: *batch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "generic-train:", err)
		os.Exit(1)
	}
	fmt.Printf("trained %s/%s D=%d in %.1fs (%s, %d epochs, %d final updates, final loss %.4f)\n",
		*kind, ds.Name, *d, time.Since(start).Seconds(), res.Trainer, res.EpochsRun, res.FinalUpdates, res.FinalLoss)
	fmt.Printf("train accuracy: %.2f%%\n", 100*must(p.Accuracy(ds.TrainX, ds.TrainY, generic.WithWorkers(*workers))))
	fmt.Printf("test accuracy:  %.2f%%\n", 100*must(p.Accuracy(ds.TestX, ds.TestY, generic.WithWorkers(*workers))))

	if *bw > 0 {
		// Post-training quantization (vs training-time TrainOptions.BW) so
		// the full-precision accuracy above and the narrowed accuracy here
		// come from the same trained counters.
		//lint:ignore generic/depapi -bw reports the paper's post-training quantization sweep on one model
		if err := p.Quantize(*bw); err != nil {
			fmt.Fprintln(os.Stderr, "generic-train:", err)
			os.Exit(1)
		}
		fmt.Printf("test accuracy @ %d-bit model: %.2f%%\n", *bw, 100*must(p.Accuracy(ds.TestX, ds.TestY, generic.WithWorkers(*workers))))
	}
	if *dims > 0 {
		correct := 0
		for i, x := range ds.TestX {
			if must(p.Predict(x, generic.WithDims(*dims))) == ds.TestY[i] {
				correct++
			}
		}
		fmt.Printf("test accuracy @ %d dims: %.2f%%\n", *dims,
			100*float64(correct)/float64(ds.TestLen()))
	}
	if *binar {
		if err := p.Binarize(); err != nil {
			fmt.Fprintln(os.Stderr, "generic-train:", err)
			os.Exit(1)
		}
		fmt.Printf("test accuracy @ binary (Hamming): %.2f%%\n",
			100*must(p.Accuracy(ds.TestX, ds.TestY, generic.WithWorkers(*workers))))
	}
	if *save != "" {
		if err := p.SaveFile(*save); err != nil {
			fmt.Fprintln(os.Stderr, "generic-train:", err)
			os.Exit(1)
		}
		fmt.Printf("saved pipeline to %s\n", *save)
	}
}

// chooseSeed resolves the -seed flag: an explicit nonzero value is used as
// given; 0 derives a fresh seed from the clock, mixed through
// rng.SplitMix64 so close-together launches do not land on correlated
// xoshiro streams. The caller prints the result — the clock never feeds the
// model directly, so every run stays replayable.
func chooseSeed(explicit uint64) uint64 {
	if explicit != 0 {
		return explicit
	}
	z := uint64(time.Now().UnixNano())
	return rng.SplitMix64(&z)
}
