// Command generic-bench regenerates the tables and figures of the GENERIC
// paper's evaluation (DAC'22). Each experiment prints a paper-style table;
// EXPERIMENTS.md records paper-versus-measured for all of them.
//
// Usage:
//
//	generic-bench                  # run every experiment at paper fidelity
//	generic-bench -exp table1,fig9 # run a subset
//	generic-bench -quick           # fast, reduced-fidelity pass
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	generic "github.com/edge-hdc/generic"
	"github.com/edge-hdc/generic/internal/perf"
	"github.com/edge-hdc/generic/internal/rng"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment ids ("+strings.Join(generic.Experiments(), ",")+") or 'all'")
		quick   = flag.Bool("quick", false, "reduced-fidelity configuration (seconds instead of minutes)")
		seed    = flag.Uint64("seed", 1, "master random seed (0 = derive one from the clock; the choice is printed so any run can be replayed)")
		d       = flag.Int("d", 0, "hypervector dimensionality override (accuracy experiments)")
		workers = flag.Int("workers", 0, "worker count for the harness sweeps (0 = all cores, 1 = serial; results are identical)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile at exit to this file")
		traceF  = flag.String("trace", "", "enable span tracing and write Chrome trace-event JSON to this file")
	)
	flag.Parse()
	profiles, err := perf.StartProfiles(*cpuProf, *memProf, *traceF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "generic-bench:", err)
		os.Exit(1)
	}
	defer func() {
		if err := profiles.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "generic-bench:", err)
		}
	}()
	if *seed == 0 {
		// Derive a fresh seed from the clock, mixed through rng.SplitMix64
		// so close-together launches do not land on correlated xoshiro
		// streams. The clock never feeds the experiments directly; the
		// printed seed replays the run exactly.
		z := uint64(time.Now().UnixNano())
		*seed = rng.SplitMix64(&z)
	}
	fmt.Printf("seed: %d (rerun with -seed %d to reproduce)\n", *seed, *seed)

	cfg := generic.DefaultExperimentConfig()
	if *quick {
		cfg = generic.QuickExperimentConfig()
	}
	cfg.Seed = *seed
	if *d != 0 {
		cfg.D = *d
	}
	cfg.Workers = *workers

	ids := generic.Experiments()
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		start := time.Now()
		res, err := generic.RunExperiment(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "generic-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", id, time.Since(start).Seconds(), res)
	}
}
