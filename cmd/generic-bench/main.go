// Command generic-bench regenerates the tables and figures of the GENERIC
// paper's evaluation (DAC'22). Each experiment prints a paper-style table;
// EXPERIMENTS.md records paper-versus-measured for all of them.
//
// Usage:
//
//	generic-bench                  # run every experiment at paper fidelity
//	generic-bench -exp table1,fig9 # run a subset
//	generic-bench -quick           # fast, reduced-fidelity pass
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	generic "github.com/edge-hdc/generic"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment ids ("+strings.Join(generic.Experiments(), ",")+") or 'all'")
		quick   = flag.Bool("quick", false, "reduced-fidelity configuration (seconds instead of minutes)")
		seed    = flag.Uint64("seed", 1, "master random seed")
		d       = flag.Int("d", 0, "hypervector dimensionality override (accuracy experiments)")
		workers = flag.Int("workers", 0, "worker count for the harness sweeps (0 = all cores, 1 = serial; results are identical)")
	)
	flag.Parse()

	cfg := generic.DefaultExperimentConfig()
	if *quick {
		cfg = generic.QuickExperimentConfig()
	}
	cfg.Seed = *seed
	if *d != 0 {
		cfg.D = *d
	}
	cfg.Workers = *workers

	ids := generic.Experiments()
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		start := time.Now()
		res, err := generic.RunExperiment(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "generic-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", id, time.Since(start).Seconds(), res)
	}
}
