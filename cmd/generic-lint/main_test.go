package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the generic-lint binary once per test run.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "generic-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building generic-lint: %v\n%s", err, out)
	}
	return bin
}

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runLint(t *testing.T, bin, dir string, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running generic-lint: %v", err)
		}
		code = ee.ExitCode()
	}
	return code, stdout.String(), stderr.String()
}

// TestExitCodeContract is the end-to-end regression test for the CLI's exit
// statuses: 0 clean, 1 findings, 2 load failure — and load failures outrank
// findings, so a partial analysis can never pass or read as merely dirty.
func TestExitCodeContract(t *testing.T) {
	bin := buildLint(t)

	// Three packages: one clean, one with a default-hot hdc kernel that
	// allocates (a finding), one that does not type-check (a load error).
	dir := writeModule(t, map[string]string{
		"go.mod":   "module example.com/x\n\ngo 1.22\n",
		"ok/ok.go": "package ok\n\nfunc Ok() int { return 1 }\n",
		"internal/hdc/vec.go": `package hdc

type Vec []int32

func Scaled(v Vec, k int32) Vec {
	out := make(Vec, len(v))
	for i, x := range v {
		out[i] = x * k
	}
	return out
}
`,
		"bad/bad.go": "package bad\n\nvar X int = \"not an int\"\n",
	})

	t.Run("clean tree exits 0", func(t *testing.T) {
		code, stdout, stderr := runLint(t, bin, dir, "./ok")
		if code != 0 || stdout != "" {
			t.Fatalf("exit %d, stdout %q, stderr %q; want silent success", code, stdout, stderr)
		}
	})

	t.Run("findings exit 1", func(t *testing.T) {
		code, stdout, _ := runLint(t, bin, dir, "./internal/hdc")
		if code != 1 {
			t.Fatalf("exit %d, want 1\n%s", code, stdout)
		}
		if !strings.Contains(stdout, "generic/hotalloc") {
			t.Fatalf("stdout missing hotalloc finding:\n%s", stdout)
		}
	})

	t.Run("load failure exits 2 and outranks findings", func(t *testing.T) {
		code, stdout, stderr := runLint(t, bin, dir, "./...")
		if code != 2 {
			t.Fatalf("exit %d, want 2\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
		}
		// The packages that did load are still analyzed and reported.
		if !strings.Contains(stdout, "generic/hotalloc") {
			t.Fatalf("partial run dropped findings from loadable packages:\n%s", stdout)
		}
		if !strings.Contains(stderr, "example.com/x/bad") || !strings.Contains(stderr, "partial analysis") {
			t.Fatalf("stderr does not surface the failed package:\n%s", stderr)
		}
	})

	t.Run("json findings are machine-readable", func(t *testing.T) {
		code, stdout, _ := runLint(t, bin, dir, "-json", "./internal/hdc")
		if code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
		var findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
			t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout)
		}
		if len(findings) == 0 || findings[0].Analyzer != "hotalloc" || findings[0].Line == 0 {
			t.Fatalf("unexpected JSON findings: %+v", findings)
		}
		if !strings.HasSuffix(findings[0].File, "vec.go") {
			t.Fatalf("finding file = %q", findings[0].File)
		}
	})

	t.Run("json empty array on clean tree", func(t *testing.T) {
		code, stdout, _ := runLint(t, bin, dir, "-json", "./ok")
		if code != 0 || strings.TrimSpace(stdout) != "[]" {
			t.Fatalf("exit %d, stdout %q; want 0 and []", code, stdout)
		}
	})
}
