// Command generic-lint runs this repository's custom determinism,
// performance, and concurrency analyzers (internal/analysis) over Go
// packages. It is built purely on the standard library: package metadata
// comes from `go list -json`, syntax and types from go/ast, go/parser,
// go/token, and go/types.
//
// Usage:
//
//	generic-lint ./...              # the whole module (run from its root)
//	generic-lint ./internal/hdc
//	generic-lint -analyzers detrand,hotalloc ./...
//	generic-lint -json ./...        # machine-readable findings for CI
//	generic-lint -escapes ./...     # reconcile against go build -gcflags=-m=1
//	generic-lint -list
//
// Findings print one per line as file:line:col: generic/<analyzer>: message,
// or with -json as an array of {file,line,col,analyzer,message} objects.
// The exit status is 0 when the tree is clean, 1 when findings were
// reported, and 2 when loading or type-checking failed — including a
// partial failure, where the packages that did load are still analyzed and
// reported but the run must not pass. Individual findings can be
// suppressed, with a mandatory reason, by a directive on the same or the
// preceding line:
//
//	//lint:ignore generic/<analyzer> <reason>
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"

	"github.com/edge-hdc/generic/internal/analysis"
)

func main() {
	var (
		names   = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list    = flag.Bool("list", false, "list the available analyzers and exit")
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array (file/line/col/analyzer/message)")
		escapes = flag.Bool("escapes", false, "cross-check go build -gcflags=-m=1 escape diagnostics against hotpath regions")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("generic/%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "generic-lint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, loadErrs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "generic-lint:", err)
		os.Exit(2)
	}
	findings := analysis.Run(pkgs, analyzers)

	if *escapes {
		diags, err := escapeDiags(patterns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "generic-lint: -escapes:", err)
			os.Exit(2)
		}
		extra := analysis.ReconcileEscapes(pkgs, diags, findings)
		extra = analysis.FilterSuppressed(pkgs, extra)
		findings = append(findings, extra...)
		analysis.SortFindings(findings)
	}

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "generic-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}

	for _, le := range loadErrs {
		fmt.Fprintln(os.Stderr, "generic-lint: load:", le)
	}
	switch code := analysis.ExitCode(len(pkgs), len(findings), len(loadErrs)); code {
	case 1:
		fmt.Fprintf(os.Stderr, "generic-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	case 2:
		fmt.Fprintf(os.Stderr, "generic-lint: %d finding(s); %d package(s) failed to load — partial analysis\n", len(findings), len(loadErrs))
		os.Exit(2)
	}
}

// escapeDiags compiles the patterns with -gcflags=-m=1 and parses the heap
// diagnostics. The build cache replays compiler output, so repeated runs
// stay cheap and still see the full diagnostic stream. A non-zero build
// exit is an error: escape output from a failed compile proves nothing.
func escapeDiags(patterns []string) ([]analysis.EscapeDiag, error) {
	args := append([]string{"build", "-gcflags=-m=1"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m=1: %v\n%s", err, stderr.Bytes())
	}
	return analysis.ParseEscapes(stderr.Bytes()), nil
}
