// Command generic-lint runs this repository's custom determinism and
// concurrency analyzers (internal/analysis) over Go packages. It is built
// purely on the standard library: package metadata comes from `go list
// -json`, syntax and types from go/ast, go/parser, go/token, and go/types.
//
// Usage:
//
//	generic-lint ./...              # the whole module (run from its root)
//	generic-lint ./internal/hdc
//	generic-lint -analyzers detrand,dimguard ./...
//	generic-lint -list
//
// Findings print one per line as file:line:col: generic/<analyzer>: message.
// The exit status is 0 when the tree is clean, 1 when findings were
// reported, and 2 when loading or type-checking failed. Individual findings
// can be suppressed, with a mandatory reason, by a directive on the same or
// the preceding line:
//
//	//lint:ignore generic/<analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/edge-hdc/generic/internal/analysis"
)

func main() {
	var (
		names = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list  = flag.Bool("list", false, "list the available analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("generic/%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "generic-lint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "generic-lint:", err)
		os.Exit(2)
	}
	findings := analysis.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "generic-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
