// Command generic-load is a minimal load generator for generic-serve — the
// client half of the serving soak tests (ROADMAP 3(d)). It drives POST
// /predict (and optionally /adapt) at a configurable concurrency for a
// fixed duration, with every worker timing each request, then reports
// throughput, a status breakdown that separates shed load (429) and
// deadline expiry (504) from real server errors, and p50/p95/p99 latencies
// from the raw response timings.
//
//	generic-load -addr http://127.0.0.1:8080 -features 128 -classes 2 \
//	    -duration 20s -concurrency 8 -adapt-frac 0.2 -json report.json
//
// The exit status is 0 when the run completed and (if -max-5xx >= 0) the
// non-shed server-error count stayed within bounds — which is exactly the
// CI chaos-soak contract: under torment the daemon may shed and may time
// out the occasional request, but it must not throw real 5xx errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/edge-hdc/generic/internal/rng"
)

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "base URL of the generic-serve daemon")
		features    = flag.Int("features", 64, "feature count per generated sample (must match the served model)")
		classes     = flag.Int("classes", 2, "label range for generated /adapt requests")
		concurrency = flag.Int("concurrency", 8, "concurrent client workers")
		duration    = flag.Duration("duration", 10*time.Second, "how long to drive load")
		adaptFrac   = flag.Float64("adapt-frac", 0, "fraction of requests that are /adapt (rest are /predict)")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		seed        = flag.Uint64("seed", 1, "sample-generation seed")
		jsonOut     = flag.String("json", "", "also write the report as JSON to this file ('-' for stdout)")
		max5xx      = flag.Int("max-5xx", -1, "exit nonzero if non-shed 5xx responses exceed this (-1 disables)")
	)
	flag.Parse()

	rep := runLoad(loadConfig{
		Addr: *addr, Features: *features, Classes: *classes,
		Concurrency: *concurrency, Duration: *duration, AdaptFrac: *adaptFrac,
		Timeout: *timeout, Seed: *seed,
	})
	rep.print(os.Stdout)
	if *jsonOut != "" {
		if err := rep.writeJSON(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "generic-load:", err)
			os.Exit(1)
		}
	}
	if *max5xx >= 0 && rep.ServerErrors > *max5xx {
		fmt.Fprintf(os.Stderr, "generic-load: %d non-shed 5xx responses exceed -max-5xx %d\n",
			rep.ServerErrors, *max5xx)
		os.Exit(1)
	}
}

type loadConfig struct {
	Addr        string
	Features    int
	Classes     int
	Concurrency int
	Duration    time.Duration
	AdaptFrac   float64
	Timeout     time.Duration
	Seed        uint64
}

// loadReport aggregates one run. Latency quantiles are computed from the
// raw per-request timings (every request, not a sample), in milliseconds.
// ServerErrors counts real 5xx failures only: 429 is deliberate shedding
// and 504 is deliberate deadline expiry, reported separately so a chaos
// soak can assert "degraded, not broken".
type loadReport struct {
	Requests     int     `json:"requests"`
	Predicts     int     `json:"predicts"`
	Adapts       int     `json:"adapts"`
	OK           int     `json:"ok"`
	Shed         int     `json:"shed"`          // 429
	Deadline     int     `json:"deadline"`      // 504
	ClientErrors int     `json:"client_errors"` // other 4xx
	ServerErrors int     `json:"server_errors"` // 5xx except 504
	Transport    int     `json:"transport_errors"`
	DurationS    float64 `json:"duration_s"`
	Throughput   float64 `json:"requests_per_s"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
}

// workerResult is one worker's tally, merged after the run.
type workerResult struct {
	rep       loadReport
	latencies []time.Duration
}

// runLoad drives the daemon and aggregates the report.
func runLoad(cfg loadConfig) *loadReport {
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 1
	}
	client := &http.Client{Timeout: cfg.Timeout}
	deadline := time.Now().Add(cfg.Duration)
	results := make([]workerResult, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for wkr := 0; wkr < cfg.Concurrency; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			r := rng.New(cfg.Seed + uint64(wkr)*0x9e3779b97f4a7c15)
			res := &results[wkr]
			x := make([]float64, cfg.Features)
			for time.Now().Before(deadline) {
				for i := range x {
					x[i] = r.Float64()
				}
				var (
					url  string
					body any
				)
				if r.Float64() < cfg.AdaptFrac {
					url = cfg.Addr + "/adapt"
					body = map[string]any{"x": x, "label": int(r.Uint64() % uint64(max(cfg.Classes, 1)))}
					res.rep.Adapts++
				} else {
					url = cfg.Addr + "/predict"
					body = map[string]any{"x": x}
					res.rep.Predicts++
				}
				raw, err := json.Marshal(body)
				if err != nil {
					res.rep.Transport++
					continue
				}
				res.rep.Requests++
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
				lat := time.Since(t0)
				if err != nil {
					res.rep.Transport++
					continue
				}
				resp.Body.Close()
				res.latencies = append(res.latencies, lat)
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					res.rep.Shed++
				case resp.StatusCode == http.StatusGatewayTimeout:
					res.rep.Deadline++
				case resp.StatusCode >= 500:
					res.rep.ServerErrors++
				case resp.StatusCode >= 400:
					res.rep.ClientErrors++
				default:
					res.rep.OK++
				}
			}
		}(wkr)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := &loadReport{DurationS: elapsed.Seconds()}
	var all []time.Duration
	for i := range results {
		r := &results[i].rep
		total.Requests += r.Requests
		total.Predicts += r.Predicts
		total.Adapts += r.Adapts
		total.OK += r.OK
		total.Shed += r.Shed
		total.Deadline += r.Deadline
		total.ClientErrors += r.ClientErrors
		total.ServerErrors += r.ServerErrors
		total.Transport += r.Transport
		all = append(all, results[i].latencies...)
	}
	if elapsed > 0 {
		total.Throughput = float64(total.Requests) / elapsed.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total.P50Ms = quantileMs(all, 0.50)
	total.P95Ms = quantileMs(all, 0.95)
	total.P99Ms = quantileMs(all, 0.99)
	if n := len(all); n > 0 {
		total.MaxMs = float64(all[n-1]) / float64(time.Millisecond)
	}
	return total
}

// quantileMs reads the q-th quantile (nearest-rank) from sorted timings.
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

func (r *loadReport) print(w *os.File) {
	fmt.Fprintf(w, "generic-load: %d requests in %.1fs (%.0f req/s): %d ok, %d shed, %d deadline, %d client-err, %d server-err, %d transport-err\n",
		r.Requests, r.DurationS, r.Throughput, r.OK, r.Shed, r.Deadline, r.ClientErrors, r.ServerErrors, r.Transport)
	fmt.Fprintf(w, "generic-load: latency p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n",
		r.P50Ms, r.P95Ms, r.P99Ms, r.MaxMs)
}

func (r *loadReport) writeJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
