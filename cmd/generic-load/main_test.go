package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunLoadBuckets drives runLoad against a scripted server and checks
// every response class lands in its bucket: 429 → shed, 504 → deadline,
// 5xx → server errors, 4xx → client errors, 200 → ok — and that the
// quantiles come out monotone and positive.
func TestRunLoadBuckets(t *testing.T) {
	var n atomic.Int64
	var predicts, adapts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := io.ReadAll(r.Body); err != nil {
			t.Error(err)
		}
		switch r.URL.Path {
		case "/predict":
			predicts.Add(1)
		case "/adapt":
			adapts.Add(1)
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		// Deterministic status rotation across requests.
		switch n.Add(1) % 5 {
		case 0:
			w.WriteHeader(http.StatusTooManyRequests)
		case 1:
			w.WriteHeader(http.StatusGatewayTimeout)
		case 2:
			w.WriteHeader(http.StatusInternalServerError)
		case 3:
			w.WriteHeader(http.StatusBadRequest)
		default:
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer ts.Close()

	rep := runLoad(loadConfig{
		Addr: ts.URL, Features: 4, Classes: 2,
		Concurrency: 3, Duration: 300 * time.Millisecond,
		AdaptFrac: 0.5, Timeout: 5 * time.Second, Seed: 1,
	})
	if rep.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if got := rep.OK + rep.Shed + rep.Deadline + rep.ClientErrors + rep.ServerErrors; got != rep.Requests {
		t.Errorf("buckets sum to %d, want %d", got, rep.Requests)
	}
	for name, v := range map[string]int{
		"ok": rep.OK, "shed": rep.Shed, "deadline": rep.Deadline,
		"client": rep.ClientErrors, "server": rep.ServerErrors,
	} {
		if v == 0 {
			t.Errorf("bucket %s empty after status rotation", name)
		}
	}
	if rep.Transport != 0 {
		t.Errorf("transport errors = %d, want 0", rep.Transport)
	}
	if rep.Predicts == 0 || rep.Adapts == 0 {
		t.Errorf("predicts=%d adapts=%d, want both nonzero at adapt-frac 0.5", rep.Predicts, rep.Adapts)
	}
	if rep.Predicts != int(predicts.Load()) || rep.Adapts != int(adapts.Load()) {
		t.Errorf("client counted %d/%d, server saw %d/%d",
			rep.Predicts, rep.Adapts, predicts.Load(), adapts.Load())
	}
	if rep.P50Ms <= 0 || rep.P50Ms > rep.P95Ms || rep.P95Ms > rep.P99Ms || rep.P99Ms > rep.MaxMs {
		t.Errorf("quantiles not monotone positive: p50=%v p95=%v p99=%v max=%v",
			rep.P50Ms, rep.P95Ms, rep.P99Ms, rep.MaxMs)
	}
	if rep.Throughput <= 0 {
		t.Errorf("throughput = %v", rep.Throughput)
	}

	// The JSON report round-trips and carries the CI-greppable key.
	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.writeJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back loadReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != *rep {
		t.Errorf("JSON round-trip mismatch:\n%+v\n%+v", back, *rep)
	}
}

// TestQuantileMs pins the nearest-rank quantile read.
func TestQuantileMs(t *testing.T) {
	if got := quantileMs(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	sorted := []time.Duration{time.Millisecond, 2 * time.Millisecond, 10 * time.Millisecond}
	if got := quantileMs(sorted, 0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := quantileMs(sorted, 1); got != 10 {
		t.Errorf("q1 = %v, want 10", got)
	}
	if got := quantileMs(sorted, 0.5); got != 2 {
		t.Errorf("q0.5 = %v, want 2", got)
	}
}
