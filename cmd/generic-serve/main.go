// Command generic-serve is an HTTP inference daemon over a trained GENERIC
// pipeline — the serving counterpart of cmd/generic-train. It loads a model
// file written by Pipeline.SaveFile (or self-trains on a named synthetic
// benchmark for smoke testing) and exposes:
//
//	POST /predict        {"x":[...]} or {"xs":[[...],...]} → predicted label(s)
//	POST /adapt          {"x":[...],"label":n} → online-learning step
//	GET  /metrics        telemetry registry snapshot (expvar-style JSON)
//	GET  /healthz        200 ok / 503 degraded, from the fault controller
//	GET  /debug/pprof/*  runtime profiling
//
// Prediction is served concurrently (the pipeline's predict path is
// goroutine-safe); adapt steps take an exclusive lock. SIGINT/SIGTERM drain
// in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	generic "github.com/edge-hdc/generic"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		model   = flag.String("model", "", "trained model file (Pipeline.SaveFile format)")
		dataset = flag.String("dataset", "", "self-train on this synthetic benchmark instead of loading a model")
		epochs  = flag.Int("epochs", 20, "retraining epochs for -dataset self-training")
		d       = flag.Int("d", 2048, "hypervector dimensionality for -dataset self-training")
		seed    = flag.Uint64("seed", 1, "hypervector/dataset seed for -dataset self-training")
		workers = flag.Int("workers", 0, "fan-out for batch /predict requests (<= 0 means GOMAXPROCS)")
	)
	flag.Parse()

	p, err := buildPipeline(*model, *dataset, *epochs, *d, *seed, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "generic-serve:", err)
		os.Exit(1)
	}
	fmt.Printf("generic-serve: pipeline ready (D=%d, %d classes, %d-bit)\n",
		p.Model().D(), p.Model().Classes(), p.Model().BW())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(p, *workers).routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("generic-serve: listening on %s\n", *addr)

	select {
	case <-ctx.Done():
		stop()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "generic-serve: shutdown:", err)
			os.Exit(1)
		}
		fmt.Println("generic-serve: drained, bye")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "generic-serve:", err)
			os.Exit(1)
		}
	}
}

// buildPipeline loads the model file, or — for -dataset — trains a fresh
// pipeline on a synthetic benchmark so smoke tests need no model artifact.
func buildPipeline(model, dataset string, epochs, d int, seed uint64, workers int) (*generic.Pipeline, error) {
	switch {
	case model != "" && dataset != "":
		return nil, errors.New("-model and -dataset are mutually exclusive")
	case model != "":
		p, err := generic.LoadPipelineFile(model)
		if err != nil {
			return nil, err
		}
		if !p.HasChecksum() {
			fmt.Fprintln(os.Stderr, "generic-serve: warning: model file has no integrity footer")
		}
		return p, nil
	case dataset != "":
		ds, err := generic.LoadDataset(dataset, seed)
		if err != nil {
			return nil, err
		}
		enc, err := generic.EncoderForDataset(generic.Generic, ds, d, seed)
		if err != nil {
			return nil, err
		}
		p := generic.NewPipeline(enc, ds.Classes)
		start := time.Now()
		ran, err := p.Fit(ds.TrainX, ds.TrainY, generic.TrainOptions{Epochs: epochs, Seed: seed, Workers: workers})
		if err != nil {
			return nil, err
		}
		fmt.Printf("generic-serve: self-trained on %s in %.1fs (%d epochs)\n",
			ds.Name, time.Since(start).Seconds(), ran)
		return p, nil
	default:
		return nil, errors.New("need -model <file> or -dataset <name>")
	}
}
