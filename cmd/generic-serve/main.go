// Command generic-serve is an HTTP inference daemon over a trained GENERIC
// pipeline — the serving counterpart of cmd/generic-train. It loads a model
// file written by Pipeline.SaveFile (or self-trains on a named synthetic
// benchmark, or resumes from a -state-dir checkpoint) and exposes:
//
//	POST /predict        {"x":[...]} or {"xs":[[...],...]} → predicted label(s)
//	POST /adapt          {"x":[...],"label":n} → durable online-learning step
//	GET  /metrics        telemetry registry snapshot (JSON; ?format=prom for
//	                     Prometheus text exposition)
//	GET  /quality        model-quality window: margins, drift, shadow agreement
//	GET  /healthz        liveness: 200 ok/degraded, 503 failing
//	GET  /readyz         readiness: 503 while draining or failing
//	GET  /debug/pprof/*  runtime profiling
//
// The serving core (internal/serve) keeps the model behind an immutable
// atomic snapshot: predicts are lock-free, adapts clone-modify-publish and
// are logged to a crash-safe WAL before acknowledgment, a background scrub
// loop CRC-sweeps and self-repairs the model, and per-endpoint admission
// gates shed overload with 429 instead of queueing into collapse. A quality
// monitor rotates the rolling margin window, checks for distribution drift
// against the Fit-time profile, and degrades /healthz while drift is
// sustained. SIGINT/SIGTERM drain in-flight requests, checkpoint, and exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	generic "github.com/edge-hdc/generic"
	"github.com/edge-hdc/generic/internal/quality"
	"github.com/edge-hdc/generic/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		model   = flag.String("model", "", "trained model file (Pipeline.SaveFile format)")
		dataset = flag.String("dataset", "", "self-train on this synthetic benchmark instead of loading a model")
		epochs  = flag.Int("epochs", 20, "retraining epochs for -dataset self-training")
		d       = flag.Int("d", 2048, "hypervector dimensionality for -dataset self-training")
		seed    = flag.Uint64("seed", 1, "hypervector/dataset seed for -dataset self-training")
		workers = flag.Int("workers", 0, "fan-out for batch /predict requests (<= 0 means GOMAXPROCS)")

		// Durability.
		stateDir  = flag.String("state-dir", "", "durable state directory (adapt WAL + checkpoints); empty serves in memory only")
		walSync   = flag.String("wal-sync", "always", "WAL fsync policy: always (durable past power loss) or none (page cache)")
		ckptEvery = flag.Int("checkpoint-every", 1024, "checkpoint and truncate the WAL after this many adapt records (0: only at shutdown)")

		// Admission control and deadlines.
		deadline   = flag.Duration("deadline", 10*time.Second, "per-request deadline (0 disables)")
		maxPredict = flag.Int("max-inflight-predict", 256, "concurrent /predict bound before shedding with 429 (0: unlimited)")
		maxAdapt   = flag.Int("max-inflight-adapt", 64, "concurrent /adapt bound before shedding with 429 (0: unlimited)")

		// Self-healing and chaos.
		scrubEvery   = flag.Duration("scrub-every", time.Minute, "background CRC-sweep + self-repair interval (0 disables)")
		chaos        = flag.Bool("chaos", false, "torment mode: periodically inject faults and handler latency to exercise degradation")
		chaosSeed    = flag.Uint64("chaos-seed", 1, "chaos torment stream seed")
		chaosEvery   = flag.Duration("chaos-every", 2*time.Second, "interval between chaos fault injections")
		chaosLatency = flag.Duration("chaos-latency", 50*time.Millisecond, "max chaos-injected handler latency")

		// Logging.
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error (debug disables request sampling)")
		logSample = flag.Int("log-sample", 100, "log 1 in N successful predict/adapt requests (errors always log; <=1 logs all)")

		// Model-quality monitoring.
		qualityEvery    = flag.Duration("quality-every", 10*time.Second, "quality window rotation + drift check interval (0 disables the monitor)")
		driftPSI        = flag.Float64("drift-psi", 0.25, "PSI at or above which a window counts toward the drift alarm")
		driftClear      = flag.Float64("drift-clear", 0.1, "PSI at or below which a window counts toward clearing the alarm")
		driftWindows    = flag.Int("drift-windows", 3, "consecutive windows over/under threshold to trip/clear the alarm")
		driftMinSamples = flag.Int64("drift-min-samples", 64, "skip drift checks on windows with fewer predicts")
		shadowEvery     = flag.Int("shadow-every", 0, "shadow-score 1 in N binary predicts through the exact counters (0 disables)")
		lowMargin       = flag.Float64("low-margin", 0.05, "margin below which a predict counts as low-margin in /quality")
	)
	flag.Parse()

	level, err := parseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "generic-serve:", err)
		os.Exit(1)
	}
	logger = newLogger(os.Stdout, level)

	if err := run(runConfig{
		addr: *addr, model: *model, dataset: *dataset, epochs: *epochs, d: *d, seed: *seed,
		stateDir: *stateDir, walSync: *walSync, ckptEvery: *ckptEvery,
		scrubEvery: *scrubEvery,
		chaos:      *chaos, chaosSeed: *chaosSeed, chaosEvery: *chaosEvery, chaosLatency: *chaosLatency,
		shadowEvery: *shadowEvery, lowMargin: *lowMargin,
		server: serverConfig{
			workers:    *workers,
			deadline:   *deadline,
			maxPredict: *maxPredict,
			maxAdapt:   *maxAdapt,
			logSample:  *logSample,
			quality: qualityConfig{
				every:      *qualityEvery,
				tripPSI:    *driftPSI,
				clearPSI:   *driftClear,
				windows:    *driftWindows,
				minSamples: *driftMinSamples,
			},
		},
	}); err != nil {
		logger.Error("fatal", slog.String("err", err.Error()))
		os.Exit(1)
	}
}

type runConfig struct {
	addr              string
	model, dataset    string
	epochs, d         int
	seed              uint64
	stateDir, walSync string
	ckptEvery         int
	scrubEvery        time.Duration
	chaos             bool
	chaosSeed         uint64
	chaosEvery        time.Duration
	chaosLatency      time.Duration
	shadowEvery       int
	lowMargin         float64
	server            serverConfig
}

func run(cfg runConfig) error {
	policy, err := serve.ParseSyncPolicy(cfg.walSync)
	if err != nil {
		return err
	}

	// A checkpoint in -state-dir is the durable truth after a restart and
	// makes -model/-dataset optional; without one, exactly one source is
	// required, as before.
	var p *generic.Pipeline
	if serve.HasCheckpoint(cfg.stateDir) {
		if cfg.model != "" || cfg.dataset != "" {
			logger.Info(fmt.Sprintf("resuming from checkpoint in %s (-model/-dataset ignored)", cfg.stateDir))
		}
	} else {
		p, err = buildPipeline(cfg.model, cfg.dataset, cfg.epochs, cfg.d, cfg.seed, cfg.server.workers)
		if err != nil {
			return err
		}
	}

	core, err := serve.Open(p, serve.Options{
		Dir:             cfg.stateDir,
		Sync:            policy,
		CheckpointEvery: cfg.ckptEvery,
	})
	if err != nil {
		return err
	}
	if n := core.Replayed(); n > 0 {
		logger.Info(fmt.Sprintf("replayed %d acknowledged adapts from the WAL", n))
	}
	snap := core.Current()
	m := snap.Pipeline.Model()
	// Quality configuration happens pre-serving, while we still hold the
	// exclusive access SetShadowSampling requires; Clone propagates it to
	// every later adapt snapshot.
	snap.Pipeline.SetShadowSampling(cfg.shadowEvery)
	quality.Default.SetLowMarginThreshold(cfg.lowMargin)
	logger.Info(fmt.Sprintf("pipeline ready (D=%d, %d classes, %d-bit, %s mode, snapshot v%d, wal seq %d)",
		m.D(), m.Classes(), m.BW(), snap.Pipeline.Mode(), snap.Version, snap.Seq))

	s := newServer(core, cfg.server)
	stopScrub := core.StartScrubLoop(cfg.scrubEvery)
	stopQuality := func() {}
	if every := cfg.server.quality.every; every > 0 {
		s.monitor.start(every)
		stopQuality = s.monitor.halt
		ref := "bootstrap from first window"
		if s.monitor.det.Ref() != nil {
			ref = "fit-time profile"
		}
		logger.Info("quality monitor running",
			slog.Duration("every", every), slog.String("baseline", ref),
			slog.Int("shadow_every", cfg.shadowEvery))
	}
	stopChaos := func() {}
	if cfg.chaos {
		s.chaos = serve.NewChaos(cfg.chaosSeed, cfg.chaosLatency)
		stopChaos = s.chaos.StartChaos(core, cfg.chaosEvery)
		logger.Warn(fmt.Sprintf("CHAOS MODE (seed %d, inject every %s, latency up to %s)",
			cfg.chaosSeed, cfg.chaosEvery, cfg.chaosLatency))
	}

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info(fmt.Sprintf("listening on %s", cfg.addr))

	select {
	case <-ctx.Done():
		stop()
		// Drain: readiness flips first so load balancers stop routing,
		// in-flight requests finish, then the core checkpoints and closes
		// the WAL — acknowledged state is durable before exit.
		s.draining.Store(true)
		stopChaos()
		stopQuality()
		stopScrub()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			core.Close()
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := core.Close(); err != nil {
			return fmt.Errorf("closing serving core: %w", err)
		}
		logger.Info("drained, bye")
		return nil
	case err := <-errc:
		stopChaos()
		stopQuality()
		stopScrub()
		core.Close()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// buildPipeline loads the model file, or — for -dataset — trains a fresh
// pipeline on a synthetic benchmark so smoke tests need no model artifact.
func buildPipeline(model, dataset string, epochs, d int, seed uint64, workers int) (*generic.Pipeline, error) {
	switch {
	case model != "" && dataset != "":
		return nil, errors.New("-model and -dataset are mutually exclusive")
	case model != "":
		p, err := generic.LoadPipelineFile(model)
		if err != nil {
			return nil, err
		}
		if !p.HasChecksum() {
			logger.Warn("model file has no integrity footer")
		}
		return p, nil
	case dataset != "":
		ds, err := generic.LoadDataset(dataset, seed)
		if err != nil {
			return nil, err
		}
		enc, err := generic.EncoderForDataset(generic.Generic, ds, d, seed)
		if err != nil {
			return nil, err
		}
		p := generic.NewPipeline(enc, ds.Classes)
		start := time.Now()
		ran, err := p.Fit(ds.TrainX, ds.TrainY, generic.TrainOptions{Epochs: epochs, Seed: seed, Workers: workers})
		if err != nil {
			return nil, err
		}
		logger.Info(fmt.Sprintf("self-trained on %s in %.1fs (%d epochs)",
			ds.Name, time.Since(start).Seconds(), ran))
		return p, nil
	default:
		return nil, errors.New("need -model <file>, -dataset <name>, or a -state-dir checkpoint")
	}
}
