package main

// The model-quality monitor: the daemon-side loop that turns the process
// observer (internal/quality) into operator-facing state. Every
// -quality-every it rotates the rolling window, bootstraps or checks the
// drift detector, and folds the alarm into the serve health machine
// (degraded-on-drift). GET /quality renders the same window as JSON.

import (
	"log/slog"
	"net/http"
	"time"

	generic "github.com/edge-hdc/generic"
	"github.com/edge-hdc/generic/internal/quality"
	"github.com/edge-hdc/generic/internal/serve"
)

// qualityMonitor owns window rotation and drift checking. tick is called
// from one goroutine (the loop, or tests directly); reads via the observer
// and detector are safe from any goroutine.
type qualityMonitor struct {
	obs  *quality.Observer
	det  *quality.Detector
	core *serve.Core
	stop chan struct{}
	done chan struct{}
}

// newQualityMonitor builds a monitor over the process-wide observer. ref is
// the profile captured at Fit/Binarize; nil means bootstrap the baseline
// from the first window with at least minSamples predicts.
func newQualityMonitor(core *serve.Core, ref *quality.Profile, cfg qualityConfig) *qualityMonitor {
	det := quality.NewDetector(ref)
	if cfg.tripPSI > 0 {
		det.TripPSI = cfg.tripPSI
	}
	if cfg.clearPSI > 0 {
		det.ClearPSI = cfg.clearPSI
	}
	if cfg.windows > 0 {
		det.Need = cfg.windows
	}
	if cfg.minSamples > 0 {
		det.MinSamples = cfg.minSamples
	}
	return &qualityMonitor{obs: quality.Default, det: det, core: core}
}

// qualityConfig carries the drift-detector knobs from flags.
type qualityConfig struct {
	every      time.Duration // window cadence; 0 disables the loop
	tripPSI    float64
	clearPSI   float64
	windows    int
	minSamples int64
}

// tick advances one monitor cycle: rotate the window, then either bootstrap
// the drift baseline (no reference yet) or run a drift check and push the
// alarm state into the serve health machine.
func (m *qualityMonitor) tick() quality.Verdict {
	m.obs.Rotate()
	st := m.obs.Window()
	if m.det.Ref() == nil {
		if st.Predicts >= m.det.MinSamples {
			mode := pipelineModeString(m.core.Current().Pipeline)
			m.det.SetRef(quality.ProfileFromStats(&st, mode))
			logger.Info("drift baseline bootstrapped from serving window",
				slog.Int64("samples", st.Predicts), slog.String("mode", mode))
		}
		return quality.Verdict{}
	}
	v := m.det.Check(&st)
	m.core.SetDrift(v.Active)
	if v.Tripped {
		logger.Warn("drift alarm tripped",
			slog.Float64("psi", v.PSI),
			slog.Float64("margin_psi", v.MarginPSI),
			slog.Float64("class_psi", v.ClassPSI),
			slog.Int64("window_predicts", st.Predicts))
	}
	return v
}

// start runs the monitor loop at the window cadence until halt.
func (m *qualityMonitor) start(every time.Duration) {
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go func() {
		defer close(m.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.tick()
			case <-m.stop:
				return
			}
		}
	}()
}

// halt stops the monitor loop and waits for it to exit.
func (m *qualityMonitor) halt() {
	if m.stop == nil {
		return
	}
	close(m.stop)
	<-m.done
}

// pipelineModeString names the representation answering predicts, matching
// the profile modes built by the pipeline ("binary" only when binarized AND
// defaulting to the binary path).
func pipelineModeString(p *generic.Pipeline) string {
	if p.Binarized() && p.Mode() == generic.Binary {
		return "binary"
	}
	return "exact"
}

// qualityResponse is the GET /quality document: the rolling-window margin
// and mix aggregates, the streaming adapt accuracy, the drift detector
// state, and (binary mode only) the shadow disagreement series.
type qualityResponse struct {
	Mode            string         `json:"mode"`
	SnapshotVersion uint64         `json:"snapshot_version"`
	Window          qualityWindow  `json:"window"`
	Adapt           qualityAdapt   `json:"adapt"`
	Drift           qualityDrift   `json:"drift"`
	Shadow          *qualityShadow `json:"shadow,omitempty"`
}

type qualityWindow struct {
	Samples       int64     `json:"samples"`
	SpanMS        float64   `json:"span_ms"`
	MarginMean    float64   `json:"margin_mean"`
	MarginP10     float64   `json:"margin_p10"`
	MarginP50     float64   `json:"margin_p50"`
	MarginP90     float64   `json:"margin_p90"`
	LowMarginRate float64   `json:"low_margin_rate"`
	ClassMix      []float64 `json:"class_mix"`
}

type qualityAdapt struct {
	Evals    int64             `json:"evals"`
	Hits     int64             `json:"hits"`
	Accuracy float64           `json:"accuracy"` // 0 when no labeled traffic yet
	PerClass []qualityClassAcc `json:"per_class,omitempty"`
}

type qualityClassAcc struct {
	Class    int     `json:"class"`
	Evals    int64   `json:"evals"`
	Accuracy float64 `json:"accuracy"`
}

type qualityDrift struct {
	Reference bool    `json:"reference"` // a baseline profile is installed
	PSI       float64 `json:"psi"`
	Active    bool    `json:"active"`
	Checks    int64   `json:"checks"`
	Trips     int64   `json:"trips"`
}

type qualityShadow struct {
	Every         int     `json:"every"`
	Samples       int64   `json:"samples"`
	Disagreements int64   `json:"disagreements"`
	Rate          float64 `json:"rate"`
}

// handleQuality renders the monitor's rolling window. Reads race freely
// with observation and rotation — the window math tolerates that by design.
func (s *server) handleQuality(w http.ResponseWriter, r *http.Request) {
	serveRequests.Inc()
	m := s.monitor
	snap := s.core.Current()
	st := m.obs.Window()

	nClasses := snap.Pipeline.Model().Classes()
	resp := qualityResponse{
		Mode:            pipelineModeString(snap.Pipeline),
		SnapshotVersion: snap.Version,
		Window: qualityWindow{
			Samples:       st.Predicts,
			SpanMS:        float64(st.SpanNS) / 1e6,
			MarginMean:    st.MeanMargin(),
			MarginP10:     st.MarginQuantile(0.10),
			MarginP50:     st.MarginQuantile(0.50),
			MarginP90:     st.MarginQuantile(0.90),
			LowMarginRate: st.LowMarginRate(),
			ClassMix:      st.ClassMix(nClasses),
		},
		Drift: qualityDrift{
			Reference: m.det.Ref() != nil,
			PSI:       m.det.LastPSI(),
			Active:    m.det.Active(),
			Checks:    m.det.Checks(),
			Trips:     m.det.Trips(),
		},
	}
	resp.Adapt.Evals = st.AdaptEvals
	resp.Adapt.Hits = st.AdaptHits
	resp.Adapt.Accuracy, _ = st.AdaptAccuracy()
	for c := 0; c < nClasses && c < quality.TrackedClasses; c++ {
		if acc, ok := st.ClassAdaptAccuracy(c); ok {
			resp.Adapt.PerClass = append(resp.Adapt.PerClass, qualityClassAcc{
				Class: c, Evals: st.AdaptClassEvals[c], Accuracy: acc,
			})
		}
	}
	if resp.Mode == "binary" {
		sh := &qualityShadow{
			Every:         snap.Pipeline.ShadowEvery(),
			Samples:       st.ShadowSamples,
			Disagreements: st.ShadowDisagree,
		}
		sh.Rate, _ = st.ShadowDisagreeRate()
		resp.Shadow = sh
	}
	writeJSON(w, http.StatusOK, resp)
}
