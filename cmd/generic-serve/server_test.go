package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	generic "github.com/edge-hdc/generic"
)

// testPipeline trains a small two-class pipeline on a separable synthetic
// problem, returning it with its training set.
func testPipeline(t *testing.T) (*generic.Pipeline, [][]float64, []int) {
	t.Helper()
	enc, err := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D: 512, Features: 8, Lo: 0, Hi: 1, UseID: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var X [][]float64
	var Y []int
	for i := 0; i < 64; i++ {
		x := make([]float64, 8)
		c := i % 2
		for j := range x {
			if (j < 4) == (c == 0) {
				x[j] = 0.85
			} else {
				x[j] = 0.15
			}
		}
		X = append(X, x)
		Y = append(Y, c)
	}
	p := generic.NewPipeline(enc, 2)
	if _, err := p.Fit(X, Y, generic.TrainOptions{Epochs: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return p, X, Y
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestEndpointsRoundTrip drives every endpoint through a real HTTP stack:
// single and batch predict, adapt, metrics, healthz (healthy, then 503 after
// an injected bank failure, then healthy again after scrub), and pprof.
func TestEndpointsRoundTrip(t *testing.T) {
	p, X, Y := testPipeline(t)
	ts := httptest.NewServer(newServer(p, 2).routes())
	defer ts.Close()

	// Single predict.
	resp, body := postJSON(t, ts.URL+"/predict", map[string]any{"x": X[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single predict: %d %s", resp.StatusCode, body)
	}
	var single predictResponse
	if err := json.Unmarshal(body, &single); err != nil {
		t.Fatal(err)
	}
	if want, _ := p.Predict(X[0]); single.Label == nil || *single.Label != want {
		t.Errorf("single predict = %v, want %d", single.Label, want)
	}

	// Batch predict matches the deprecated PredictBatch form bit for bit.
	resp, body = postJSON(t, ts.URL+"/predict", map[string]any{"xs": X})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch predict: %d %s", resp.StatusCode, body)
	}
	var batch predictResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	want, err := p.PredictBatch(X, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Labels) != len(want) {
		t.Fatalf("batch returned %d labels, want %d", len(batch.Labels), len(want))
	}
	for i := range want {
		if batch.Labels[i] != want[i] {
			t.Errorf("batch label %d = %d, want %d", i, batch.Labels[i], want[i])
		}
	}

	// Malformed predict bodies are client errors — including a wrong
	// feature width, which must come back as 400, not a handler panic.
	for _, bad := range []any{
		map[string]any{},
		map[string]any{"x": X[0], "xs": X},
		map[string]any{"bogus": 1},
		map[string]any{"x": []float64{1, 2, 3}},
		map[string]any{"xs": [][]float64{{1, 2, 3}}},
	} {
		if resp, _ := postJSON(t, ts.URL+"/predict", bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad body %v: status %d, want 400", bad, resp.StatusCode)
		}
	}
	if resp, _ := postJSON(t, ts.URL+"/adapt", adaptRequest{X: X[0], Label: 99}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("adapt with out-of-range label: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/predict"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /predict: %d, want 405", resp.StatusCode)
	}

	// Adapt round-trip.
	resp, body = postJSON(t, ts.URL+"/adapt", adaptRequest{X: X[1], Label: Y[1]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adapt: %d %s", resp.StatusCode, body)
	}
	var ar adaptResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}

	// Metrics: valid JSON with nonzero encode and predict activity.
	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var metrics map[string]json.RawMessage
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("metrics is not valid JSON: %v\n%s", err, body)
	}
	for _, name := range []string{"encode_ns", "predict_ns", "serve_predict_ns", "serve_adapt_ns"} {
		var h struct {
			Count int64 `json:"count"`
		}
		if err := json.Unmarshal(metrics[name], &h); err != nil {
			t.Fatalf("metrics[%s]: %v", name, err)
		}
		if h.Count == 0 {
			t.Errorf("metrics[%s].count = 0, want nonzero", name)
		}
	}
	if string(metrics["serve_requests_total"]) == "" {
		t.Error("serve_requests_total missing from /metrics")
	}

	// Read-time quantile summaries per endpoint, alongside the raw buckets.
	var summaries map[string]struct {
		Count int64 `json:"count"`
		P50NS int64 `json:"p50_ns"`
		P95NS int64 `json:"p95_ns"`
		P99NS int64 `json:"p99_ns"`
	}
	if err := json.Unmarshal(metrics["summaries"], &summaries); err != nil {
		t.Fatalf("metrics[summaries]: %v", err)
	}
	for _, ep := range []string{"predict", "adapt"} {
		s, ok := summaries[ep]
		if !ok {
			t.Errorf("summaries missing endpoint %q", ep)
			continue
		}
		if s.Count == 0 || s.P50NS == 0 {
			t.Errorf("summaries[%s] = %+v, want nonzero count and p50", ep, s)
		}
		if s.P50NS > s.P95NS || s.P95NS > s.P99NS {
			t.Errorf("summaries[%s] quantiles not monotone: %+v", ep, s)
		}
	}

	// Healthy before injection.
	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before injection: %d %s", resp.StatusCode, body)
	}
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("healthz status = %q, want ok", h.Status)
	}

	// A dead class-memory bank degrades the daemon: healthz flips to 503.
	if _, err := p.InjectFaults(generic.FaultSpec{
		Site: generic.FaultSiteClass, Kind: generic.FaultBankFail, Lane: 3, Seed: 9,
	}); err != nil {
		t.Fatal(err)
	}
	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after bank fault: %d, want 503 (%s)", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.PendingFaults == 0 {
		t.Errorf("degraded healthz = %+v", h)
	}

	// Scrub repairs what it can; pending faults drop to zero. The scrub may
	// leave lanes masked or rows quarantined (still degraded) — the contract
	// here is only that the pending count clears.
	if _, err := p.Scrub(); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, ts.URL+"/healthz")
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.PendingFaults != 0 {
		t.Errorf("pending faults after scrub = %d, want 0", h.PendingFaults)
	}

	// pprof index answers.
	if resp, _ := get(t, ts.URL+"/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index: %d", resp.StatusCode)
	}
}

// TestConcurrentPredict hammers POST /predict from many goroutines (run
// under -race in CI) and checks every response is bit-identical to the
// pipeline's own batch prediction, interleaved with adapt requests to
// exercise the read/write lock split.
func TestConcurrentPredict(t *testing.T) {
	p, X, Y := testPipeline(t)
	ts := httptest.NewServer(newServer(p, 2).routes())
	defer ts.Close()

	want, err := p.PredictAll(X)
	if err != nil {
		t.Fatal(err)
	}
	// Adapt on already-correct samples: exercises the exclusive-lock path
	// without changing the model, so predictions stay comparable.
	correct := -1
	for i := range X {
		if want[i] == Y[i] {
			correct = i
			break
		}
	}
	if correct < 0 {
		t.Fatal("no correctly-predicted sample to adapt on")
	}

	const goroutines = 8
	const perG = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				idx := (g*perG + i) % len(X)
				if i%5 == 4 {
					resp, _ := postJSON(t, ts.URL+"/adapt", adaptRequest{X: X[correct], Label: Y[correct]})
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("adapt status %d", resp.StatusCode)
					}
					continue
				}
				resp, body := postJSON(t, ts.URL+"/predict", map[string]any{"x": X[idx]})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("predict status %d: %s", resp.StatusCode, body)
					continue
				}
				var pr predictResponse
				if err := json.Unmarshal(body, &pr); err != nil {
					errs <- err
					continue
				}
				if pr.Label == nil || *pr.Label != want[idx] {
					errs <- fmt.Errorf("sample %d: got %v, want %d", idx, pr.Label, want[idx])
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBuildPipelineFlags pins the flag contract: exactly one source.
func TestBuildPipelineFlags(t *testing.T) {
	if _, err := buildPipeline("", "", 1, 512, 1, 1); err == nil {
		t.Error("no source accepted")
	}
	if _, err := buildPipeline("x.model", "EEG", 1, 512, 1, 1); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("both sources: err = %v", err)
	}
	if _, err := buildPipeline("", "NoSuchDataset", 1, 512, 1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

// TestServeModelFile round-trips a model through SaveFile → -model loading.
func TestServeModelFile(t *testing.T) {
	p, X, _ := testPipeline(t)
	path := t.TempDir() + "/m.model"
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := buildPipeline(path, "", 1, 512, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(loaded, 1).routes())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/predict", map[string]any{"x": X[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict on loaded model: %d %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if want, _ := p.Predict(X[0]); pr.Label == nil || *pr.Label != want {
		t.Errorf("loaded-model predict = %v, want %d", pr.Label, want)
	}
}
