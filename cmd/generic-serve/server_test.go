package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	generic "github.com/edge-hdc/generic"
	"github.com/edge-hdc/generic/internal/serve"
)

// testPipeline trains a small two-class pipeline on a separable synthetic
// problem, returning it with its training set.
func testPipeline(t *testing.T) (*generic.Pipeline, [][]float64, []int) {
	t.Helper()
	enc, err := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D: 512, Features: 8, Lo: 0, Hi: 1, UseID: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var X [][]float64
	var Y []int
	for i := 0; i < 64; i++ {
		x := make([]float64, 8)
		c := i % 2
		for j := range x {
			if (j < 4) == (c == 0) {
				x[j] = 0.85
			} else {
				x[j] = 0.15
			}
		}
		X = append(X, x)
		Y = append(Y, c)
	}
	p := generic.NewPipeline(enc, 2)
	if _, err := p.Fit(X, Y, generic.TrainOptions{Epochs: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return p, X, Y
}

// testServer wraps a pipeline in an in-memory serving core and HTTP layer.
func testServer(t *testing.T, p *generic.Pipeline, cfg serverConfig) (*server, *serve.Core) {
	t.Helper()
	core, err := serve.Open(p, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { core.Close() })
	return newServer(core, cfg), core
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestEndpointsRoundTrip drives every endpoint through a real HTTP stack:
// single and batch predict, adapt, metrics, healthz (ok, then degraded-but-
// still-200 after an injected bank failure, then repaired after scrub),
// readyz, and pprof.
func TestEndpointsRoundTrip(t *testing.T) {
	p, X, Y := testPipeline(t)
	s, core := testServer(t, p, serverConfig{workers: 2})
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// Single predict.
	resp, body := postJSON(t, ts.URL+"/predict", map[string]any{"x": X[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single predict: %d %s", resp.StatusCode, body)
	}
	var single predictResponse
	if err := json.Unmarshal(body, &single); err != nil {
		t.Fatal(err)
	}
	if want, _ := p.Predict(X[0]); single.Label == nil || *single.Label != want {
		t.Errorf("single predict = %v, want %d", single.Label, want)
	}

	// Batch predict matches the deprecated PredictBatch form bit for bit.
	resp, body = postJSON(t, ts.URL+"/predict", map[string]any{"xs": X})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch predict: %d %s", resp.StatusCode, body)
	}
	var batch predictResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	want, err := p.PredictBatch(X, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Labels) != len(want) {
		t.Fatalf("batch returned %d labels, want %d", len(batch.Labels), len(want))
	}
	for i := range want {
		if batch.Labels[i] != want[i] {
			t.Errorf("batch label %d = %d, want %d", i, batch.Labels[i], want[i])
		}
	}

	// Malformed predict bodies are client errors — including a wrong
	// feature width, which must come back as 400, not a handler panic.
	for _, bad := range []any{
		map[string]any{},
		map[string]any{"x": X[0], "xs": X},
		map[string]any{"bogus": 1},
		map[string]any{"x": []float64{1, 2, 3}},
		map[string]any{"xs": [][]float64{{1, 2, 3}}},
	} {
		if resp, _ := postJSON(t, ts.URL+"/predict", bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad body %v: status %d, want 400", bad, resp.StatusCode)
		}
	}
	if resp, _ := postJSON(t, ts.URL+"/adapt", adaptRequest{X: X[0], Label: 99}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("adapt with out-of-range label: status %d, want 400", resp.StatusCode)
	}

	// Adapt round-trip: the ack also publishes a new snapshot version.
	v0 := core.Current().Version
	resp, body = postJSON(t, ts.URL+"/adapt", adaptRequest{X: X[1], Label: Y[1]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adapt: %d %s", resp.StatusCode, body)
	}
	var ar adaptResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if got := core.Current().Version; got != v0+1 {
		t.Errorf("snapshot version after adapt = %d, want %d", got, v0+1)
	}

	// Metrics: valid JSON with nonzero encode and predict activity.
	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var metrics map[string]json.RawMessage
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("metrics is not valid JSON: %v\n%s", err, body)
	}
	for _, name := range []string{"encode_ns", "predict_ns", "serve_predict_ns", "serve_adapt_ns"} {
		var h struct {
			Count int64 `json:"count"`
		}
		if err := json.Unmarshal(metrics[name], &h); err != nil {
			t.Fatalf("metrics[%s]: %v", name, err)
		}
		if h.Count == 0 {
			t.Errorf("metrics[%s].count = 0, want nonzero", name)
		}
	}
	for _, name := range []string{"serve_requests_total", "snapshot_version", "wal_appends_total"} {
		if string(metrics[name]) == "" {
			t.Errorf("%s missing from /metrics", name)
		}
	}

	// Read-time quantile summaries per endpoint, alongside the raw buckets.
	var summaries map[string]struct {
		Count int64 `json:"count"`
		P50NS int64 `json:"p50_ns"`
		P95NS int64 `json:"p95_ns"`
		P99NS int64 `json:"p99_ns"`
	}
	if err := json.Unmarshal(metrics["summaries"], &summaries); err != nil {
		t.Fatalf("metrics[summaries]: %v", err)
	}
	for _, ep := range []string{"predict", "adapt"} {
		s, ok := summaries[ep]
		if !ok {
			t.Errorf("summaries missing endpoint %q", ep)
			continue
		}
		if s.Count == 0 || s.P50NS == 0 {
			t.Errorf("summaries[%s] = %+v, want nonzero count and p50", ep, s)
		}
		if s.P50NS > s.P95NS || s.P95NS > s.P99NS {
			t.Errorf("summaries[%s] quantiles not monotone: %+v", ep, s)
		}
	}

	// Healthy and ready before injection.
	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before injection: %d %s", resp.StatusCode, body)
	}
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("healthz status = %q, want ok", h.Status)
	}
	if h.SnapshotVersion == 0 {
		t.Error("healthz snapshot_version = 0, want >= 1")
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("readyz healthy: %d, want 200", resp.StatusCode)
	}

	// A dead class-memory bank degrades the daemon — but liveness holds:
	// /healthz stays 200 with status "degraded" (the graceful-degradation
	// contract is degraded-not-dead), and /readyz keeps routing traffic.
	if _, err := core.InjectFaults(generic.FaultSpec{
		Site: generic.FaultSiteClass, Kind: generic.FaultBankFail, Lane: 3, Seed: 9,
	}); err != nil {
		t.Fatal(err)
	}
	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after bank fault: %d, want 200 degraded (%s)", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.PendingFaults == 0 {
		t.Errorf("degraded healthz = %+v", h)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("readyz while degraded: %d, want 200", resp.StatusCode)
	}

	// Scrub repairs what it can; pending faults drop to zero. The scrub may
	// leave lanes masked or rows quarantined (still degraded) — the contract
	// here is only that the pending count clears.
	if _, err := core.Scrub(); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, ts.URL+"/healthz")
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.PendingFaults != 0 {
		t.Errorf("pending faults after scrub = %d, want 0", h.PendingFaults)
	}

	// pprof index answers.
	if resp, _ := get(t, ts.URL+"/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index: %d", resp.StatusCode)
	}
}

// TestMethodRestrictions pins every endpoint to its one verb: anything else
// is 405 with an Allow header naming the right one.
func TestMethodRestrictions(t *testing.T) {
	p, _, _ := testPipeline(t)
	s, _ := testServer(t, p, serverConfig{})
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	cases := []struct {
		method, path, allow string
	}{
		{http.MethodGet, "/predict", http.MethodPost},
		{http.MethodDelete, "/adapt", http.MethodPost},
		{http.MethodPost, "/metrics", http.MethodGet},
		{http.MethodPost, "/healthz", http.MethodGet},
		{http.MethodPost, "/readyz", http.MethodGet},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s: Allow = %q, want %q", tc.method, tc.path, got, tc.allow)
		}
	}
}

// TestOverloadShed fills the predict and adapt gates directly (the test is
// in-package) and checks the next request sheds with 429 + Retry-After
// instead of queueing; releasing the slot restores service.
func TestOverloadShed(t *testing.T) {
	p, X, Y := testPipeline(t)
	s, _ := testServer(t, p, serverConfig{maxPredict: 1, maxAdapt: 1})
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	for _, ep := range []struct {
		name string
		gate *serve.Gate
		body any
	}{
		{"/predict", s.predictGate, map[string]any{"x": X[0]}},
		{"/adapt", s.adaptGate, adaptRequest{X: X[0], Label: Y[0]}},
	} {
		if !ep.gate.TryAcquire() {
			t.Fatalf("%s: could not hold the only slot", ep.name)
		}
		resp, _ := postJSON(t, ts.URL+ep.name, ep.body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("%s while saturated: status %d, want 429", ep.name, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s shed response missing Retry-After", ep.name)
		}
		ep.gate.Release()
		if resp, body := postJSON(t, ts.URL+ep.name, ep.body); resp.StatusCode != http.StatusOK {
			t.Errorf("%s after release: status %d, want 200 (%s)", ep.name, resp.StatusCode, body)
		}
	}
}

// TestDeadline504 runs with a 1ms request budget and chaos latency far above
// it: injected delays must surface as 504 Gateway Timeout, and requests that
// dodge the injection (chaos skips latency about half the time) still 200.
func TestDeadline504(t *testing.T) {
	p, X, _ := testPipeline(t)
	s, _ := testServer(t, p, serverConfig{deadline: time.Millisecond})
	s.chaos = serve.NewChaos(7, 500*time.Millisecond)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	var got504, got200 bool
	for i := 0; i < 40 && !(got504 && got200); i++ {
		resp, _ := postJSON(t, ts.URL+"/predict", map[string]any{"x": X[0]})
		switch resp.StatusCode {
		case http.StatusGatewayTimeout:
			got504 = true
		case http.StatusOK:
			got200 = true
		default:
			t.Fatalf("predict under chaos latency: unexpected status %d", resp.StatusCode)
		}
	}
	if !got504 {
		t.Error("no request hit the deadline despite chaos latency >> budget")
	}
	if !got200 {
		t.Error("no request succeeded (chaos skips latency ~half the time)")
	}
}

// TestConcurrentPredict hammers POST /predict from many goroutines (run
// under -race in CI) and checks every response is bit-identical to the
// pipeline's own batch prediction, interleaved with adapt requests to
// exercise snapshot publication under concurrent lock-free reads.
func TestConcurrentPredict(t *testing.T) {
	p, X, Y := testPipeline(t)
	s, _ := testServer(t, p, serverConfig{workers: 2})
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	want, err := p.PredictAll(X)
	if err != nil {
		t.Fatal(err)
	}
	// Adapt on already-correct samples: publishes fresh snapshots without
	// changing the model, so predictions stay comparable.
	correct := -1
	for i := range X {
		if want[i] == Y[i] {
			correct = i
			break
		}
	}
	if correct < 0 {
		t.Fatal("no correctly-predicted sample to adapt on")
	}

	const goroutines = 8
	const perG = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				idx := (g*perG + i) % len(X)
				if i%5 == 4 {
					resp, _ := postJSON(t, ts.URL+"/adapt", adaptRequest{X: X[correct], Label: Y[correct]})
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("adapt status %d", resp.StatusCode)
					}
					continue
				}
				resp, body := postJSON(t, ts.URL+"/predict", map[string]any{"x": X[idx]})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("predict status %d: %s", resp.StatusCode, body)
					continue
				}
				var pr predictResponse
				if err := json.Unmarshal(body, &pr); err != nil {
					errs <- err
					continue
				}
				if pr.Label == nil || *pr.Label != want[idx] {
					errs <- fmt.Errorf("sample %d: got %v, want %d", idx, pr.Label, want[idx])
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestReadyzDraining pins the drain handshake: flipping the draining flag
// turns /readyz into 503 ("draining") while /healthz stays 200 — load
// balancers stop routing without a supervisor restart.
func TestReadyzDraining(t *testing.T) {
	p, _, _ := testPipeline(t)
	s, _ := testServer(t, p, serverConfig{})
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	s.draining.Store(true)
	resp, body := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", resp.StatusCode)
	}
	var rr readyResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Ready || rr.Reason != "draining" {
		t.Errorf("readyz body = %+v, want ready=false reason=draining", rr)
	}
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: %d, want 200 (liveness is separate)", resp.StatusCode)
	}
}

// TestBuildPipelineFlags pins the flag contract: exactly one source.
func TestBuildPipelineFlags(t *testing.T) {
	if _, err := buildPipeline("", "", 1, 512, 1, 1); err == nil {
		t.Error("no source accepted")
	}
	if _, err := buildPipeline("x.model", "EEG", 1, 512, 1, 1); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("both sources: err = %v", err)
	}
	if _, err := buildPipeline("", "NoSuchDataset", 1, 512, 1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run(runConfig{walSync: "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "sync policy") {
		t.Errorf("bogus -wal-sync: err = %v", err)
	}
}

// TestServeModelFile round-trips a model through SaveFile → -model loading.
func TestServeModelFile(t *testing.T) {
	p, X, _ := testPipeline(t)
	path := t.TempDir() + "/m.model"
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := buildPipeline(path, "", 1, 512, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := testServer(t, loaded, serverConfig{workers: 1})
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/predict", map[string]any{"x": X[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict on loaded model: %d %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if want, _ := p.Predict(X[0]); pr.Label == nil || *pr.Label != want {
		t.Errorf("loaded-model predict = %v, want %d", pr.Label, want)
	}
}
