package main

// Structured logging for the daemon: one log/slog JSON logger (stdout, like
// the printf lines it replaces, so existing log-scraping keeps working) plus
// a request-logging middleware with per-endpoint sampling — hot predict
// traffic logs one line in every -log-sample successes, while every error
// and every non-hot endpoint logs unconditionally. Debug level disables
// sampling entirely.

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sync/atomic"

	"github.com/edge-hdc/generic/internal/quality"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// logger is the process logger. It defaults to info on stdout so early boot
// errors are never swallowed; main reconfigures it from -log-level.
var logger = newLogger(os.Stdout, slog.LevelInfo)

func newLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// parseLogLevel maps the -log-level flag to a slog level.
func parseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown -log-level %q (debug, info, warn, error)", s)
}

// statusWriter records the response status plus the request's quality
// signal (the margin bucket of a single-sample predict) for the access log.
type statusWriter struct {
	http.ResponseWriter
	status       int
	marginBucket int // -1: not a single-sample predict
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// setMarginBucket stashes a predict's margin bucket on the response writer
// when the middleware wrapped it (direct handler tests pass a plain
// ResponseWriter, which is fine — the signal is log-only).
func setMarginBucket(w http.ResponseWriter, margin float64) {
	if sw, ok := w.(*statusWriter); ok {
		sw.marginBucket = quality.MarginBucket(margin)
	}
}

// sampledEndpoints are the hot endpoints whose success lines are sampled.
var sampledEndpoints = map[string]bool{"predict": true, "adapt": true}

// logged wraps a handler with the structured access log: endpoint, status,
// duration, the snapshot version that answered, and the margin bucket for
// single predicts. Errors log at warn (4xx) or error (5xx) unconditionally;
// successes on hot endpoints log one line in every cfg.logSample (counted
// per endpoint), except at debug level, which logs them all.
func (s *server) logged(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	var n atomic.Int64 // per-endpoint success counter for sampling
	return func(w http.ResponseWriter, r *http.Request) {
		start := telemetry.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK, marginBucket: -1}
		h(sw, r)
		durMS := float64(telemetry.Now()-start) / 1e6

		level := slog.LevelInfo
		switch {
		case sw.status >= 500:
			level = slog.LevelError
		case sw.status >= 400:
			level = slog.LevelWarn
		default:
			if sampledEndpoints[endpoint] && s.cfg.logSample > 1 &&
				!logger.Enabled(r.Context(), slog.LevelDebug) &&
				n.Add(1)%int64(s.cfg.logSample) != 0 {
				return
			}
		}
		attrs := make([]slog.Attr, 0, 6)
		attrs = append(attrs,
			slog.String("endpoint", endpoint),
			slog.Int("status", sw.status),
			slog.Float64("dur_ms", durMS),
			slog.Uint64("snapshot", s.core.Current().Version),
		)
		if sw.marginBucket >= 0 {
			attrs = append(attrs, slog.Int("margin_bucket", sw.marginBucket))
		}
		logger.LogAttrs(r.Context(), level, "request", attrs...)
	}
}
