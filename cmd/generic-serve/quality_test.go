package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/edge-hdc/generic/internal/quality"
	"github.com/edge-hdc/generic/internal/serve"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// TestQualityEndpoint drives real traffic through the HTTP stack and checks
// GET /quality reports a populated, internally-consistent window document.
func TestQualityEndpoint(t *testing.T) {
	p, X, Y := testPipeline(t)
	s, _ := testServer(t, p, serverConfig{workers: 1})
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	before := quality.Default.Total()
	for i := 0; i < 20; i++ {
		if resp, body := postJSON(t, ts.URL+"/predict", map[string]any{"x": X[i%len(X)]}); resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d: %d %s", i, resp.StatusCode, body)
		}
	}
	for i := 0; i < 4; i++ {
		if resp, body := postJSON(t, ts.URL+"/adapt", adaptRequest{X: X[i], Label: Y[i]}); resp.StatusCode != http.StatusOK {
			t.Fatalf("adapt %d: %d %s", i, resp.StatusCode, body)
		}
	}

	resp, body := get(t, ts.URL+"/quality")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/quality: %d %s", resp.StatusCode, body)
	}
	var q qualityResponse
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatalf("/quality is not valid JSON: %v\n%s", err, body)
	}
	if q.Mode != "exact" {
		t.Errorf("mode = %q, want exact", q.Mode)
	}
	if q.SnapshotVersion == 0 {
		t.Error("snapshot_version = 0, want >= 1")
	}
	// The process observer is shared, so assert against deltas: this test
	// alone contributed 20 predicts and 4 labeled adapts.
	if got := q.Window.Samples - before.Predicts; got < 20 {
		t.Errorf("window gained %d predicts, want >= 20", got)
	}
	if q.Window.MarginP10 > q.Window.MarginP50 || q.Window.MarginP50 > q.Window.MarginP90 {
		t.Errorf("margin quantiles not monotone: p10=%v p50=%v p90=%v",
			q.Window.MarginP10, q.Window.MarginP50, q.Window.MarginP90)
	}
	if q.Window.MarginP90 <= 0 || q.Window.MarginP90 > 1 {
		t.Errorf("margin_p90 = %v, want in (0,1]", q.Window.MarginP90)
	}
	if len(q.Window.ClassMix) != 2 {
		t.Fatalf("class_mix has %d entries, want 2", len(q.Window.ClassMix))
	}
	if q.Window.ClassMix[0]+q.Window.ClassMix[1] <= 0 {
		t.Error("class_mix sums to zero despite predicts")
	}
	if got := q.Adapt.Evals - before.AdaptEvals; got < 4 {
		t.Errorf("adapt evals gained %d, want >= 4", got)
	}
	if q.Adapt.Accuracy < 0 || q.Adapt.Accuracy > 1 {
		t.Errorf("adapt accuracy = %v, want in [0,1]", q.Adapt.Accuracy)
	}
	if !q.Drift.Reference {
		t.Error("drift.reference = false; Fit should have captured a profile")
	}
	if q.Shadow != nil {
		t.Error("shadow section present in exact mode")
	}
}

// TestQualityEndpointBinaryShadow binarizes the pipeline with shadow
// sampling on every predict and checks /quality grows a shadow section.
func TestQualityEndpointBinaryShadow(t *testing.T) {
	p, X, _ := testPipeline(t)
	if err := p.Binarize(); err != nil {
		t.Fatal(err)
	}
	p.SetShadowSampling(1)
	s, _ := testServer(t, p, serverConfig{workers: 1})
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	before := quality.Default.Total()
	for i := 0; i < 16; i++ {
		if resp, body := postJSON(t, ts.URL+"/predict", map[string]any{"x": X[i%len(X)]}); resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d: %d %s", i, resp.StatusCode, body)
		}
	}
	_, body := get(t, ts.URL+"/quality")
	var q qualityResponse
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if q.Mode != "binary" {
		t.Fatalf("mode = %q, want binary", q.Mode)
	}
	if q.Shadow == nil {
		t.Fatal("shadow section missing in binary mode")
	}
	if q.Shadow.Every != 1 {
		t.Errorf("shadow.every = %d, want 1", q.Shadow.Every)
	}
	if got := q.Shadow.Samples - before.ShadowSamples; got < 16 {
		t.Errorf("shadow samples gained %d, want >= 16 (every=1)", got)
	}
	if q.Shadow.Rate < 0 || q.Shadow.Rate > 1 {
		t.Errorf("shadow rate = %v, want in [0,1]", q.Shadow.Rate)
	}
}

// TestMetricsPromNegotiation pins the /metrics content negotiation: JSON by
// default, Prometheus text exposition via ?format=prom or an Accept header
// preferring text/plain.
func TestMetricsPromNegotiation(t *testing.T) {
	p, _, _ := testPipeline(t)
	s, _ := testServer(t, p, serverConfig{})
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	resp, body := get(t, ts.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("default /metrics Content-Type = %q, want JSON", ct)
	}
	if !json.Valid(body) {
		t.Error("default /metrics body is not valid JSON")
	}

	resp, body = get(t, ts.URL+"/metrics?format=prom")
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("prom /metrics Content-Type = %q, want %q", ct, telemetry.ContentType)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE predict_ns histogram",
		"# TYPE quality_margin_micro histogram",
		"# TYPE serve_requests_total counter",
		`predict_ns_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	ar, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	ar.Body.Close()
	if ct := ar.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("Accept: text/plain Content-Type = %q, want prom", ct)
	}
}

// TestDriftDegradesHealthz runs the monitor state machine end to end: a
// reference profile of confident margins, then a flood of near-tie predicts,
// must trip the drift alarm, flip /healthz to degraded (still 200, still
// ready), and clear again once the distribution recovers.
func TestDriftDegradesHealthz(t *testing.T) {
	p, _, _ := testPipeline(t)
	s, core := testServer(t, p, serverConfig{
		quality: qualityConfig{tripPSI: 0.05, clearPSI: 0.02, windows: 1, minSamples: 32},
	})
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// Pin a fully-known baseline: confident margins, even class mix.
	ref := make([]float64, 64)
	labels := make([]int, 64)
	for i := range ref {
		ref[i] = 0.8
		labels[i] = i % 2
	}
	s.monitor.det.SetRef(quality.BuildProfile(ref, labels, "exact"))

	// First tick establishes the window edge; then shift the distribution.
	s.monitor.tick()
	tripped := false
	for round := 0; round < 5 && !tripped; round++ {
		for i := 0; i < 64; i++ {
			quality.Default.ObservePredict(0, 0.001)
		}
		tripped = s.monitor.tick().Active
	}
	if !tripped {
		t.Fatal("drift alarm never tripped on a collapsed-margin distribution")
	}

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under drift: %d, want 200 (degraded is alive)", resp.StatusCode)
	}
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || !h.Drift {
		t.Errorf("healthz under drift = status %q drift %v, want degraded/true", h.Status, h.Drift)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("readyz under drift: %d, want 200 (drift does not stop routing)", resp.StatusCode)
	}
	if core.State() != serve.StateDegraded {
		t.Errorf("core state = %v, want degraded", core.State())
	}

	// Age the collapsed-margin flood out of the rolling window: the ring
	// keeps up to ringSlots-1 past intervals, so a few empty rotations move
	// the window's base past the flood before recovery traffic arrives.
	for i := 0; i < 8; i++ {
		s.monitor.tick()
	}

	// Recovery: windows matching the baseline clear the alarm.
	cleared := false
	for round := 0; round < 5 && !cleared; round++ {
		for i := 0; i < 64; i++ {
			quality.Default.ObservePredict(i%2, 0.8)
		}
		cleared = !s.monitor.tick().Active
	}
	if !cleared {
		t.Fatal("drift alarm never cleared after the distribution recovered")
	}
	_, body = get(t, ts.URL+"/healthz")
	h = healthResponse{} // "drift" is omitempty; a stale true must not leak in
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Drift {
		t.Errorf("healthz after recovery = status %q drift %v, want ok/false", h.Status, h.Drift)
	}
}

// TestRequestLogSampling pins the access-log contract: successful predicts
// log 1 in logSample lines with endpoint/status/margin-bucket attrs, while
// client errors always log.
func TestRequestLogSampling(t *testing.T) {
	var buf bytes.Buffer
	old := logger
	logger = newLogger(&buf, slog.LevelInfo)
	defer func() { logger = old }()

	p, X, _ := testPipeline(t)
	s, _ := testServer(t, p, serverConfig{logSample: 4})
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	for i := 0; i < 8; i++ {
		postJSON(t, ts.URL+"/predict", map[string]any{"x": X[0]})
	}
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/predict", map[string]any{"bogus": 1})
	}

	var okLines, errLines int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec struct {
			Level        string  `json:"level"`
			Msg          string  `json:"msg"`
			Endpoint     string  `json:"endpoint"`
			Status       int     `json:"status"`
			Snapshot     uint64  `json:"snapshot"`
			DurMS        float64 `json:"dur_ms"`
			MarginBucket *int    `json:"margin_bucket"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		if rec.Msg != "request" || rec.Endpoint != "predict" {
			continue
		}
		switch rec.Status {
		case http.StatusOK:
			okLines++
			if rec.MarginBucket == nil {
				t.Error("successful predict line missing margin_bucket")
			}
			if rec.Snapshot == 0 {
				t.Error("predict line missing snapshot version")
			}
		case http.StatusBadRequest:
			errLines++
			if rec.Level != "WARN" {
				t.Errorf("400 logged at %s, want WARN", rec.Level)
			}
		}
	}
	if okLines != 2 {
		t.Errorf("8 successes with logSample=4 produced %d lines, want 2", okLines)
	}
	if errLines != 3 {
		t.Errorf("3 client errors produced %d lines, want 3 (errors never sampled)", errLines)
	}
}

// TestQualityMonitorBootstrap feeds a monitor with no fit-time profile and
// checks the first sufficiently-large window becomes the drift baseline.
func TestQualityMonitorBootstrap(t *testing.T) {
	p, _, _ := testPipeline(t)
	core, err := serve.Open(p, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	m := newQualityMonitor(core, nil, qualityConfig{minSamples: 16})
	if m.det.Ref() != nil {
		t.Fatal("detector has a reference before bootstrap")
	}
	m.tick() // window edge; tiny window must not bootstrap yet
	for i := 0; i < 16; i++ {
		quality.Default.ObservePredict(i%2, 0.5)
	}
	m.tick()
	if m.det.Ref() == nil {
		t.Fatal("detector did not bootstrap from the first full window")
	}
	if got := m.det.Ref().Mode; got != "exact" {
		t.Errorf("bootstrap profile mode = %q, want exact", got)
	}
}

// TestPipelineModeString pins the serving-mode naming used by /quality.
func TestPipelineModeString(t *testing.T) {
	p, _, _ := testPipeline(t)
	if got := pipelineModeString(p); got != "exact" {
		t.Errorf("trained pipeline mode = %q, want exact", got)
	}
	if err := p.Binarize(); err != nil {
		t.Fatal(err)
	}
	if got := pipelineModeString(p); got != "binary" {
		t.Errorf("binarized pipeline mode = %q, want binary", got)
	}
}
