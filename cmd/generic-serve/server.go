package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"

	generic "github.com/edge-hdc/generic"
	"github.com/edge-hdc/generic/internal/perf"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// Serve-level instruments, registered in the default registry so GET
// /metrics exposes them next to the library's encode/predict histograms.
var (
	servePredictNS = telemetry.Default.Histogram("serve_predict_ns")
	serveAdaptNS   = telemetry.Default.Histogram("serve_adapt_ns")
	serveRequests  = telemetry.Default.Counter("serve_requests_total")
	serveErrors    = telemetry.Default.Counter("serve_errors_total")
)

// maxBodyBytes bounds request payloads; a 32 MiB cap fits batches of tens of
// thousands of samples while keeping a malformed client from exhausting
// memory.
const maxBodyBytes = 32 << 20

// server wraps a trained pipeline for HTTP inference. Reads (predict,
// healthz) take the read lock — Pipeline.Predict is itself safe for
// concurrent use — while mutations (adapt) take the write lock, mirroring
// the library's "Fit/Adapt require exclusive access" contract.
type server struct {
	mu       sync.RWMutex
	pipeline *generic.Pipeline
	workers  int
}

func newServer(p *generic.Pipeline, workers int) *server {
	return &server{pipeline: p, workers: workers}
}

// routes builds the daemon's mux. pprof handlers are registered explicitly
// rather than through net/http/pprof's DefaultServeMux side effects.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/adapt", s.handleAdapt)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// predictRequest accepts a single sample (x) or a batch (xs) — exactly one.
type predictRequest struct {
	X  []float64   `json:"x,omitempty"`
	Xs [][]float64 `json:"xs,omitempty"`
}

// predictResponse carries "label" for single-sample requests and "labels"
// for batches. Label is a pointer so class 0 still serializes ("label":0
// would be dropped by omitempty on a plain int).
type predictResponse struct {
	Label  *int  `json:"label,omitempty"`
	Labels []int `json:"labels,omitempty"`
}

type adaptRequest struct {
	X     []float64 `json:"x"`
	Label int       `json:"label"`
}

type adaptResponse struct {
	Pred    int  `json:"pred"`
	Updated bool `json:"updated"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := telemetry.Now()
	// Request-scoped span: nests any pipeline spans recorded below it and
	// labels CPU-profile samples taken while this handler runs.
	_, sp := perf.Start(r.Context(), "http.predict")
	defer sp.End()
	serveRequests.Inc()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req predictRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch {
	case req.X != nil && req.Xs != nil:
		writeError(w, http.StatusBadRequest, errors.New(`provide "x" or "xs", not both`))
	case req.X != nil:
		s.mu.RLock()
		label, err := s.pipeline.Predict(req.X)
		s.mu.RUnlock()
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, predictResponse{Label: &label})
		servePredictNS.ObserveSince(start)
	case req.Xs != nil:
		s.mu.RLock()
		labels, err := s.pipeline.PredictAll(req.Xs, generic.WithWorkers(s.workers))
		s.mu.RUnlock()
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, predictResponse{Labels: labels})
		servePredictNS.ObserveSince(start)
	default:
		writeError(w, http.StatusBadRequest, errors.New(`body needs "x" (single sample) or "xs" (batch)`))
	}
}

func (s *server) handleAdapt(w http.ResponseWriter, r *http.Request) {
	start := telemetry.Now()
	_, sp := perf.Start(r.Context(), "http.adapt")
	defer sp.End()
	serveRequests.Inc()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req adaptRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.X == nil {
		writeError(w, http.StatusBadRequest, errors.New(`body needs "x" and "label"`))
		return
	}
	s.mu.Lock()
	pred, updated, err := s.pipeline.Adapt(req.X, req.Label)
	s.mu.Unlock()
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, adaptResponse{Pred: pred, Updated: updated})
	serveAdaptNS.ObserveSince(start)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	serveRequests.Inc()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	b := telemetry.Default.AppendJSON(nil)
	b = appendSummaries(b)
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		serveErrors.Inc()
	}
}

// summaryEndpoints maps each serving endpoint to its latency histogram; the
// /metrics handler derives quantile summaries from these at read time.
var summaryEndpoints = []struct {
	name string
	hist *telemetry.Histogram
}{
	{"predict", servePredictNS},
	{"adapt", serveAdaptNS},
}

// appendSummaries splices a "summaries" key into the registry's JSON object
// (which always ends in '}'): per-endpoint p50/p95/p99 latencies derived from
// the raw histogram buckets at read time. The raw buckets stay untouched so
// existing consumers of the flat metric keys keep working; quantiles are
// bucket upper bounds (conservative, at most 2x the true latency) and -1
// when the mass sits beyond the top bucket.
func appendSummaries(b []byte) []byte {
	b = b[:len(b)-1]
	b = append(b, `,"summaries":{`...)
	for i, ep := range summaryEndpoints {
		if i > 0 {
			b = append(b, ',')
		}
		b = fmt.Appendf(b, `%q:{"count":%d,"p50_ns":%d,"p95_ns":%d,"p99_ns":%d}`,
			ep.name, ep.hist.Count(),
			ep.hist.Quantile(0.50), ep.hist.Quantile(0.95), ep.hist.Quantile(0.99))
	}
	return append(b, '}', '}')
}

// healthResponse mirrors faults.Health plus the serving verdict.
type healthResponse struct {
	Status          string `json:"status"` // "ok" or "degraded"
	PendingFaults   int    `json:"pending_faults"`
	MaskedLanes     []int  `json:"masked_lanes"`
	QuarantinedRows int    `json:"quarantined_rows"`
	InjectedBits    int    `json:"injected_bits"`
	EffectiveDims   int    `json:"effective_dims"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	serveRequests.Inc()
	s.mu.RLock()
	h, err := s.pipeline.Health()
	s.mu.RUnlock()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	resp := healthResponse{
		Status:          "ok",
		PendingFaults:   h.PendingFaults,
		MaskedLanes:     h.MaskedLanes,
		QuarantinedRows: h.QuarantinedRows,
		InjectedBits:    h.InjectedBits,
		EffectiveDims:   h.EffectiveDims,
	}
	code := http.StatusOK
	if h.Degraded() {
		resp.Status = "degraded"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// statusFor classifies a pipeline error: shape/label validation failures
// are the client's fault; a pipeline that lost its model is ours.
func statusFor(err error) int {
	if errors.Is(err, generic.ErrNotTrained) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		serveErrors.Inc()
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	serveErrors.Inc()
	writeJSON(w, code, errorResponse{Error: err.Error()})
}
