package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	generic "github.com/edge-hdc/generic"
	"github.com/edge-hdc/generic/internal/perf"
	"github.com/edge-hdc/generic/internal/serve"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// Serve-level instruments, registered in the default registry so GET
// /metrics exposes them next to the library's encode/predict histograms.
var (
	servePredictNS = telemetry.Default.Histogram("serve_predict_ns")
	serveAdaptNS   = telemetry.Default.Histogram("serve_adapt_ns")
	serveRequests  = telemetry.Default.Counter("serve_requests_total")
	serveErrors    = telemetry.Default.Counter("serve_errors_total")
)

// maxBodyBytes bounds request payloads; a 32 MiB cap fits batches of tens of
// thousands of samples while keeping a malformed client from exhausting
// memory.
const maxBodyBytes = 32 << 20

// errOverloaded is the shed response body; it never reaches statusFor (the
// handlers write 429 directly) but gives clients a stable message.
var errOverloaded = errors.New("server overloaded, retry later")

// serverConfig carries the resilience and observability knobs from flags to
// the handler set.
type serverConfig struct {
	workers    int
	deadline   time.Duration // per-request budget; 0 disables
	maxPredict int           // in-flight /predict bound; 0 unlimited
	maxAdapt   int           // in-flight /adapt bound; 0 unlimited
	logSample  int           // log 1 in N successful predict/adapt requests; <=1 logs all
	quality    qualityConfig // drift-detector knobs (see quality.go)
}

// server is the HTTP layer over the serving core. Predict and health reads
// are lock-free (one atomic snapshot load); adapts serialize inside the
// core without ever blocking readers — there is no server-level lock at
// all, which is the point of the snapshot architecture.
type server struct {
	core        *serve.Core
	chaos       *serve.Chaos // nil unless -chaos
	cfg         serverConfig
	predictGate *serve.Gate
	adaptGate   *serve.Gate
	monitor     *qualityMonitor
	draining    atomic.Bool // set during graceful shutdown; /readyz flips to 503
}

func newServer(core *serve.Core, cfg serverConfig) *server {
	return &server{
		core:        core,
		cfg:         cfg,
		predictGate: serve.NewGate(cfg.maxPredict),
		adaptGate:   serve.NewGate(cfg.maxAdapt),
		monitor:     newQualityMonitor(core, core.Current().Pipeline.QualityProfile(), cfg.quality),
	}
}

// routes builds the daemon's mux. Every endpoint is pinned to its one
// method (405 + Allow otherwise); predict/adapt additionally run under the
// per-request deadline, and the model-facing endpoints run inside the
// structured access log (probes and scrapes stay unlogged — supervisor
// traffic would drown the signal). pprof handlers are registered explicitly
// rather than through net/http/pprof's DefaultServeMux side effects.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.logged("predict", method(http.MethodPost, s.withDeadline(s.handlePredict))))
	mux.HandleFunc("/adapt", s.logged("adapt", method(http.MethodPost, s.withDeadline(s.handleAdapt))))
	mux.HandleFunc("/quality", s.logged("quality", method(http.MethodGet, s.handleQuality)))
	mux.HandleFunc("/metrics", method(http.MethodGet, s.handleMetrics))
	mux.HandleFunc("/healthz", method(http.MethodGet, s.handleHealthz))
	mux.HandleFunc("/readyz", method(http.MethodGet, s.handleReadyz))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// method restricts a handler to one HTTP method, answering anything else
// with 405 and an Allow header.
func method(verb string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != verb {
			w.Header().Set("Allow", verb)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s required", verb))
			return
		}
		h(w, r)
	}
}

// withDeadline attaches the per-request budget to the request context, so
// slow work surfaces as 504 instead of an unbounded stall.
func (s *server) withDeadline(h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.deadline <= 0 {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.deadline)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// shed answers an over-admission request: 429 with a Retry-After hint, the
// load balancer's cue to back off before latency collapses.
func shed(w http.ResponseWriter) {
	telemetry.ServeShed.Inc()
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, errOverloaded)
}

// chaosDelay sleeps the chaos-injected handler latency, honoring the
// request deadline: an expired budget surfaces as the context error.
func (s *server) chaosDelay(ctx context.Context) error {
	d := s.chaos.Latency()
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// predictRequest accepts a single sample (x) or a batch (xs) — exactly one.
type predictRequest struct {
	X  []float64   `json:"x,omitempty"`
	Xs [][]float64 `json:"xs,omitempty"`
}

// predictResponse carries "label" for single-sample requests and "labels"
// for batches. Label is a pointer so class 0 still serializes ("label":0
// would be dropped by omitempty on a plain int).
type predictResponse struct {
	Label  *int  `json:"label,omitempty"`
	Labels []int `json:"labels,omitempty"`
}

type adaptRequest struct {
	X     []float64 `json:"x"`
	Label int       `json:"label"`
}

type adaptResponse struct {
	Pred    int  `json:"pred"`
	Updated bool `json:"updated"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := telemetry.Now()
	// Request-scoped span: nests any pipeline spans recorded below it and
	// labels CPU-profile samples taken while this handler runs.
	_, sp := perf.Start(r.Context(), "http.predict")
	defer sp.End()
	serveRequests.Inc()
	if !s.predictGate.TryAcquire() {
		shed(w)
		return
	}
	defer s.predictGate.Release()
	var req predictRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.chaosDelay(r.Context()); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	// One atomic load pins this request's model state; adapts published
	// while we score do not disturb it and we never take a lock.
	snap := s.core.Current()
	switch {
	case req.X != nil && req.Xs != nil:
		writeError(w, http.StatusBadRequest, errors.New(`provide "x" or "xs", not both`))
	case req.X != nil:
		label, margin, err := snap.Pipeline.PredictMargin(req.X)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		if err := r.Context().Err(); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		setMarginBucket(w, margin)
		writeJSON(w, http.StatusOK, predictResponse{Label: &label})
		servePredictNS.ObserveSince(start)
	case req.Xs != nil:
		labels, err := snap.Pipeline.PredictAll(req.Xs, generic.WithWorkers(s.cfg.workers))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		if err := r.Context().Err(); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, predictResponse{Labels: labels})
		servePredictNS.ObserveSince(start)
	default:
		writeError(w, http.StatusBadRequest, errors.New(`body needs "x" (single sample) or "xs" (batch)`))
	}
}

func (s *server) handleAdapt(w http.ResponseWriter, r *http.Request) {
	start := telemetry.Now()
	_, sp := perf.Start(r.Context(), "http.adapt")
	defer sp.End()
	serveRequests.Inc()
	if !s.adaptGate.TryAcquire() {
		shed(w)
		return
	}
	defer s.adaptGate.Release()
	var req adaptRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.X == nil {
		writeError(w, http.StatusBadRequest, errors.New(`body needs "x" and "label"`))
		return
	}
	if err := s.chaosDelay(r.Context()); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	// The core WAL-logs before publishing: a 200 from here means the
	// update is durable per the fsync policy and visible to the next
	// predict snapshot.
	pred, updated, err := s.core.Adapt(req.X, req.Label)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, adaptResponse{Pred: pred, Updated: updated})
	serveAdaptNS.ObserveSince(start)
}

// handleMetrics serves the registry snapshot: JSON by default, Prometheus
// text exposition when the scraper asks for it (?format=prom, or an Accept
// header preferring text/plain — the prometheus scraper's default).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	serveRequests.Inc()
	if wantsProm(r) {
		w.Header().Set("Content-Type", telemetry.ContentType)
		if err := telemetry.Default.WriteProm(w); err != nil {
			serveErrors.Inc()
		}
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	b := telemetry.Default.AppendJSON(nil)
	b = appendSummaries(b)
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		serveErrors.Inc()
	}
}

// wantsProm decides the /metrics representation: an explicit ?format=prom
// (or =json) wins; otherwise an Accept header that mentions text/plain and
// not application/json selects the exposition format.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}

// summaryEndpoints maps each serving endpoint to its latency histogram; the
// /metrics handler derives quantile summaries from these at read time.
var summaryEndpoints = []struct {
	name string
	hist *telemetry.Histogram
}{
	{"predict", servePredictNS},
	{"adapt", serveAdaptNS},
}

// appendSummaries splices a "summaries" key into the registry's JSON object
// (which always ends in '}'): per-endpoint p50/p95/p99 latencies derived from
// the raw histogram buckets at read time. The raw buckets stay untouched so
// existing consumers of the flat metric keys keep working; quantiles are
// bucket upper bounds (conservative, at most 2x the true latency) and -1
// when the mass sits beyond the top bucket.
func appendSummaries(b []byte) []byte {
	b = b[:len(b)-1]
	b = append(b, `,"summaries":{`...)
	for i, ep := range summaryEndpoints {
		if i > 0 {
			b = append(b, ',')
		}
		b = fmt.Appendf(b, `%q:{"count":%d,"p50_ns":%d,"p95_ns":%d,"p99_ns":%d}`,
			ep.name, ep.hist.Count(),
			ep.hist.Quantile(0.50), ep.hist.Quantile(0.95), ep.hist.Quantile(0.99))
	}
	return append(b, '}', '}')
}

// healthResponse mirrors the serving health machine plus the fault
// controller's detail and the snapshot lineage.
type healthResponse struct {
	Status          string `json:"status"`          // "ok", "degraded", or "failing"
	Drift           bool   `json:"drift,omitempty"` // model-quality drift alarm active
	PendingFaults   int    `json:"pending_faults"`
	MaskedLanes     []int  `json:"masked_lanes"`
	QuarantinedRows int    `json:"quarantined_rows"`
	InjectedBits    int    `json:"injected_bits"`
	EffectiveDims   int    `json:"effective_dims"`
	SnapshotVersion uint64 `json:"snapshot_version"`
	WALSeq          uint64 `json:"wal_seq"`
}

// handleHealthz reports liveness: 200 while the engine is answering — even
// degraded (that is the graceful-degradation contract: damaged, repairing,
// still serving) — and 503 only in the failing state, when durability or
// repair is broken and a supervisor should restart or drain.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	serveRequests.Inc()
	snap := s.core.Current()
	h, err := snap.Pipeline.Health()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	state := s.core.State()
	resp := healthResponse{
		Status:          state.String(),
		Drift:           s.core.Drift(),
		PendingFaults:   h.PendingFaults,
		MaskedLanes:     h.MaskedLanes,
		QuarantinedRows: h.QuarantinedRows,
		InjectedBits:    h.InjectedBits,
		EffectiveDims:   h.EffectiveDims,
		SnapshotVersion: snap.Version,
		WALSeq:          snap.Seq,
	}
	code := http.StatusOK
	if state == serve.StateFailing {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

type readyResponse struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
}

// handleReadyz reports readiness for load balancers: 503 while draining
// (shutdown in progress) or failing, 200 otherwise — including degraded,
// where answers may be approximate but capacity is real. Splitting this
// from /healthz lets an LB stop routing without a supervisor restart.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	serveRequests.Inc()
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, readyResponse{Ready: false, Reason: "draining"})
	case s.core.State() == serve.StateFailing:
		writeJSON(w, http.StatusServiceUnavailable, readyResponse{Ready: false, Reason: "failing"})
	default:
		writeJSON(w, http.StatusOK, readyResponse{Ready: true})
	}
}

// statusFor classifies a serving error:
//
//   - deadline expiry → 504 (the server ran out of request budget)
//   - client cancellation → 499 (nginx-style: the client went away)
//   - WAL append failure → 503 (durability broken; the update was refused,
//     not half-applied)
//   - corrupt model / untrained pipeline → 500 (our state is wrong)
//   - everything else (shape/label validation) → 400 (client's fault)
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		telemetry.ServeDeadlines.Inc()
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, serve.ErrWAL):
		return http.StatusServiceUnavailable
	case errors.Is(err, generic.ErrNotTrained), errors.Is(err, generic.ErrCorruptModel):
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// statusClientClosedRequest is nginx's non-standard 499: the client closed
// the connection before the response; there is no one left to answer.
const statusClientClosedRequest = 499

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		serveErrors.Inc()
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	serveErrors.Inc()
	writeJSON(w, code, errorResponse{Error: err.Error()})
}
