// Command generic-datagen exports the synthetic benchmarks as CSV for use
// outside this repository (plotting, cross-checking against other HDC
// implementations). The first column is the label; the rest are features.
//
// Usage:
//
//	generic-datagen -dataset EEG -split train > eeg_train.csv
//	generic-datagen -dataset Hepta -cluster > hepta.csv
//	generic-datagen -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	generic "github.com/edge-hdc/generic"
)

func main() {
	var (
		name    = flag.String("dataset", "EEG", "benchmark name")
		split   = flag.String("split", "train", "train | test (classification only)")
		cluster = flag.Bool("cluster", false, "export a clustering benchmark instead")
		seed    = flag.Uint64("seed", 1, "generator seed")
		list    = flag.Bool("list", false, "list available benchmarks and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("classification:", strings.Join(generic.Datasets(), " "))
		fmt.Println("clustering:   ", strings.Join(generic.ClusterSets(), " "))
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *cluster {
		cs, err := generic.LoadClusterSet(*name, *seed)
		if err != nil {
			fail(err)
		}
		writeCSV(w, cs.X, cs.Labels)
		return
	}

	ds, err := generic.LoadDataset(*name, *seed)
	if err != nil {
		fail(err)
	}
	switch *split {
	case "train":
		writeCSV(w, ds.TrainX, ds.TrainY)
	case "test":
		writeCSV(w, ds.TestX, ds.TestY)
	default:
		fail(fmt.Errorf("unknown split %q", *split))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "generic-datagen:", err)
	os.Exit(1)
}

func writeCSV(w *bufio.Writer, X [][]float64, Y []int) {
	for i, x := range X {
		w.WriteString(strconv.Itoa(Y[i]))
		for _, v := range x {
			w.WriteByte(',')
			w.WriteString(strconv.FormatFloat(v, 'g', 8, 64))
		}
		w.WriteByte('\n')
	}
}
