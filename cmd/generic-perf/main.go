// Command generic-perf is the repository's benchmark harness: it runs a
// registered suite over the engine's hot paths (GENERIC encoding single and
// batch, batch prediction at several worker counts, a retraining epoch, the
// accelerator cycle model, model-file round-trips) and writes the summary to
// BENCH_GENERIC.json — the machine-readable perf trajectory CI records on
// every push to main.
//
// Methodology: each suite entry is calibrated once to a fixed per-repetition
// iteration budget, warmed up, and then measured over -reps repetitions that
// interleave across the whole suite (A B C A B C ...), so slow drift of the
// host (thermal, noisy neighbors) spreads across entries instead of biasing
// whichever ran last. Reported ns/op is the median across repetitions with
// p10/p90 spread; allocations come from runtime.MemStats deltas.
//
// Usage:
//
//	generic-perf                         # run the suite, write BENCH_GENERIC.json
//	generic-perf -suite encode,predict   # run a subset (prefix match)
//	generic-perf -compare old.json new.json [-threshold 0.3] [-gate]
//
// The compare mode judges new against old with the median +
// interquantile-overlap rule (see internal/perf): advisory by default,
// exit code 1 with -gate.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	generic "github.com/edge-hdc/generic"
	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/perf"
)

func main() {
	var (
		out       = flag.String("out", "BENCH_GENERIC.json", "output path for the benchmark summary JSON")
		reps      = flag.Int("reps", 7, "interleaved repetitions per suite entry")
		budgetMS  = flag.Int("budget", 100, "per-repetition time budget per entry, in milliseconds (sets the fixed iteration count)")
		suite     = flag.String("suite", "", "comma-separated name prefixes to run (empty = full suite)")
		compareTo = flag.Bool("compare", false, "compare two summary files: generic-perf -compare old.json new.json")
		threshold = flag.Float64("threshold", 0.30, "compare: relative median slowdown that counts as a regression when spreads separate")
		gate      = flag.Bool("gate", false, "compare: exit nonzero on regression (default is advisory)")
		list      = flag.Bool("list", false, "list suite entries and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the suite run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile at exit to this file")
		traceOut  = flag.String("trace", "", "enable span tracing and write Chrome trace-event JSON to this file")
	)
	flag.Parse()

	if *compareTo {
		runCompare(flag.Args(), *threshold, *gate)
		return
	}

	benches, err := buildSuite()
	if err != nil {
		fatal(err)
	}
	if *list {
		for _, b := range benches {
			fmt.Println(b.name)
		}
		return
	}
	if *suite != "" {
		benches = filterSuite(benches, *suite)
		if len(benches) == 0 {
			fatal(fmt.Errorf("no suite entry matches -suite %q", *suite))
		}
	}

	profiles, err := perf.StartProfiles(*cpuProf, *memProf, *traceOut)
	if err != nil {
		fatal(err)
	}

	file := runSuite(benches, *reps, time.Duration(*budgetMS)*time.Millisecond)
	if err := profiles.Stop(); err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := file.WriteJSON(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d entries, git %s)\n", *out, len(file.Results), file.GitSHA)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "generic-perf:", err)
	os.Exit(1)
}

// A bench is one registered suite entry: op runs the measured operation once.
type bench struct {
	name string
	op   func()
	// iters is the calibrated fixed per-repetition iteration count.
	iters int
	// nsPerOp/bytesPerOp/allocsPerOp collect one value per repetition.
	nsPerOp, bytesPerOp, allocsPerOp []float64
}

// buildSuite constructs the registered suite over shared fixtures: the EEG
// benchmark (128 features, 6 classes) at D=2048, the paper's default
// GENERIC encoding. Fixture construction is excluded from measurement.
func buildSuite() ([]*bench, error) {
	const d = 2048
	ds, err := generic.LoadDataset("EEG", 1)
	if err != nil {
		return nil, err
	}
	enc, err := generic.EncoderForDataset(generic.Generic, ds, d, 1)
	if err != nil {
		return nil, err
	}
	// A private encoder for the single-encode entry so pipeline state never
	// interferes.
	encSingle, err := generic.EncoderForDataset(generic.Generic, ds, d, 1)
	if err != nil {
		return nil, err
	}
	x := ds.TestX[0]
	scratch := make(generic.Hypervector, encSingle.D())

	batch := ds.TrainX[:256]
	fitX, fitY := ds.TrainX[:200], ds.TrainY[:200]

	p := generic.NewPipeline(enc, ds.Classes)
	if _, err := p.Fit(fitX, fitY, generic.TrainOptions{Epochs: 3, Seed: 1}); err != nil {
		return nil, err
	}

	// A binarized clone for the packed-inference entries; the original stays
	// exact so the existing entries measure the same thing they always did.
	pb := p.Clone()
	if err := pb.Binarize(); err != nil {
		return nil, err
	}
	binDst := make([]int, len(batch))
	// Options are values; building them once outside the measured op keeps
	// the batch entry at its steady state (a serving loop would hoist them
	// the same way).
	w1 := generic.WithWorkers(1)

	encoded := generic.Encode(encSingle, fitX)
	encodedVecs := make([]hdc.Vec, len(encoded))
	copy(encodedVecs, encoded)

	spec := generic.Spec{D: d, Features: ds.Features, N: 3,
		Classes: ds.Classes, BW: 16, UseID: ds.UseID}
	acc, err := generic.NewAccelerator(spec, 1, ds.Lo, ds.Hi)
	if err != nil {
		return nil, err
	}

	var buf bytes.Buffer
	predictIdx := 0

	return []*bench{
		{name: "encode/generic/single", op: func() {
			encSingle.Encode(x, scratch)
		}},
		{name: "encode/generic/batch256", op: func() {
			generic.EncodeWorkers(enc, batch, 0)
		}},
		{name: "predict/single", op: func() {
			// Rotate through the test set so branch history does not
			// overfit one sample.
			if _, err := p.Predict(ds.TestX[predictIdx%ds.TestLen()]); err != nil {
				fatal(err)
			}
			predictIdx++
		}},
		{name: "predict/batch256/w1", op: func() {
			if _, err := p.PredictAll(batch, generic.WithWorkers(1)); err != nil {
				fatal(err)
			}
		}},
		{name: "predict/batch256/w4", op: func() {
			if _, err := p.PredictAll(batch, generic.WithWorkers(4)); err != nil {
				fatal(err)
			}
		}},
		{name: "predict/binary/single", op: func() {
			if _, err := pb.Predict(ds.TestX[predictIdx%ds.TestLen()]); err != nil {
				fatal(err)
			}
			predictIdx++
		}},
		{name: "predict/binary/batch256", op: func() {
			// Preallocated destination: the steady state allocates nothing.
			if err := pb.PredictAllInto(binDst, batch, w1); err != nil {
				fatal(err)
			}
		}},
		{name: "fit/epoch200", op: func() {
			classifier.TrainEncodedResult(encodedVecs, fitY, ds.Classes,
				generic.TrainOptions{Epochs: 1, Seed: 1})
		}},
		{name: "fit/lehdc200", op: func() {
			classifier.TrainEncodedResult(encodedVecs, fitY, ds.Classes,
				generic.TrainOptions{Epochs: 1, Seed: 1, Trainer: "lehdc"})
		}},
		{name: "sim/infer", op: func() {
			acc.Infer(x)
		}},
		{name: "modelio/roundtrip", op: func() {
			buf.Reset()
			if err := p.Save(&buf); err != nil {
				fatal(err)
			}
			if _, err := generic.LoadPipeline(&buf); err != nil {
				fatal(err)
			}
		}},
	}, nil
}

func filterSuite(benches []*bench, spec string) []*bench {
	var keep []*bench
	for _, b := range benches {
		for _, prefix := range strings.Split(spec, ",") {
			if prefix = strings.TrimSpace(prefix); prefix != "" && strings.HasPrefix(b.name, prefix) {
				keep = append(keep, b)
				break
			}
		}
	}
	return keep
}

// runSuite calibrates, warms up, and measures every entry with interleaved
// repetitions, then assembles the summary file.
func runSuite(benches []*bench, reps int, budget time.Duration) *perf.BenchFile {
	if reps < 3 {
		reps = 3
	}
	for _, b := range benches {
		b.iters = calibrate(b, budget)
	}
	// Warmup: one unrecorded repetition each, in suite order.
	for _, b := range benches {
		runRep(b, b.iters)
	}
	// Interleaved measurement: rep r of every entry before rep r+1 of any.
	for r := 0; r < reps; r++ {
		for _, b := range benches {
			ns, bytesOp, allocs := measureRep(b, b.iters)
			b.nsPerOp = append(b.nsPerOp, ns)
			b.bytesPerOp = append(b.bytesPerOp, bytesOp)
			b.allocsPerOp = append(b.allocsPerOp, allocs)
		}
	}

	file := &perf.BenchFile{
		Schema: perf.BenchSchemaVersion, GitSHA: gitSHA(),
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, b := range benches {
		res := perf.Summarize(b.name, b.iters, b.nsPerOp, b.bytesPerOp, b.allocsPerOp)
		file.Results = append(file.Results, res)
		fmt.Printf("%-28s %6d iters x %d reps   %12.0f ns/op  [p10 %.0f, p90 %.0f]  %8.0f B/op %6.1f allocs/op\n",
			b.name, b.iters, res.Reps, res.MedianNsPerOp, res.P10NsPerOp, res.P90NsPerOp,
			res.BytesPerOp, res.AllocsPerOp)
	}
	return file
}

// calibrate picks the fixed per-repetition iteration count: enough single
// runs to estimate the op cost, then budget/cost rounded to a 1-2-5 step so
// the count is stable across near-identical hosts.
func calibrate(b *bench, budget time.Duration) int {
	const probe = 3
	start := time.Now()
	for i := 0; i < probe; i++ {
		b.op()
	}
	per := time.Since(start) / probe
	if per <= 0 {
		per = time.Nanosecond
	}
	n := int(budget / per)
	if n < 1 {
		return 1
	}
	return roundDown125(n)
}

// roundDown125 rounds n down to the nearest 1/2/5 x 10^k.
func roundDown125(n int) int {
	mag := 1
	for n >= mag*10 {
		mag *= 10
	}
	switch {
	case n >= 5*mag:
		return 5 * mag
	case n >= 2*mag:
		return 2 * mag
	default:
		return mag
	}
}

func runRep(b *bench, iters int) {
	for i := 0; i < iters; i++ {
		b.op()
	}
}

// measureRep times one repetition and derives per-op wall time and
// allocation figures from MemStats deltas (Mallocs/TotalAlloc are exact
// regardless of GC timing).
func measureRep(b *bench, iters int) (nsPerOp, bytesPerOp, allocsPerOp float64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	runRep(b, iters)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return float64(elapsed.Nanoseconds()) / n,
		float64(after.TotalAlloc-before.TotalAlloc) / n,
		float64(after.Mallocs-before.Mallocs) / n
}

// gitSHA resolves HEAD by reading .git directly (no git binary dependency),
// searching upward from the working directory. Returns "unknown" when the
// repository state cannot be read.
func gitSHA() string {
	dir, err := os.Getwd()
	if err != nil {
		return "unknown"
	}
	for {
		if sha := readHEAD(filepath.Join(dir, ".git")); sha != "" {
			return sha
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "unknown"
		}
		dir = parent
	}
}

func readHEAD(gitDir string) string {
	head, err := os.ReadFile(filepath.Join(gitDir, "HEAD"))
	if err != nil {
		return ""
	}
	s := strings.TrimSpace(string(head))
	ref, ok := strings.CutPrefix(s, "ref: ")
	if !ok {
		return s // detached HEAD holds the SHA directly
	}
	if b, err := os.ReadFile(filepath.Join(gitDir, filepath.FromSlash(ref))); err == nil {
		return strings.TrimSpace(string(b))
	}
	if data, err := os.ReadFile(filepath.Join(gitDir, "packed-refs")); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			fields := strings.Fields(line)
			if len(fields) == 2 && fields[1] == ref {
				return fields[0]
			}
		}
	}
	return ""
}

// runCompare implements -compare old.json new.json.
func runCompare(args []string, threshold float64, gate bool) {
	if len(args) != 2 {
		fatal(fmt.Errorf("-compare needs exactly two files: old.json new.json"))
	}
	old, err := perf.ReadBenchFile(args[0])
	if err != nil {
		fatal(err)
	}
	cur, err := perf.ReadBenchFile(args[1])
	if err != nil {
		fatal(err)
	}
	if old.GOOS != cur.GOOS || old.GOARCH != cur.GOARCH {
		fmt.Printf("note: comparing across hosts (%s/%s vs %s/%s) — treat verdicts with suspicion\n",
			old.GOOS, old.GOARCH, cur.GOOS, cur.GOARCH)
	}
	vs := perf.Compare(old, cur, threshold)
	if err := perf.WriteVerdicts(os.Stdout, vs); err != nil {
		fatal(err)
	}
	if perf.Regressed(vs) {
		fmt.Printf("REGRESSION: at least one entry slowed >%.0f%% beyond noise (old %s -> new %s)\n",
			100*threshold, short(old.GitSHA), short(cur.GitSHA))
		if gate {
			os.Exit(1)
		}
		fmt.Println("(advisory mode; pass -gate to fail the build)")
		return
	}
	fmt.Println("no regressions")
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	if sha == "" {
		return "unknown"
	}
	return sha
}
